// Table 2: theoretical bounds vs simulated averages.
//   * detection time in minutes at 100 packets/second (bound = Theorem 2;
//     average = Monte-Carlo first checkpoint with FP, FN <= sigma, plus the
//     per-run stable-conviction average);
//   * storage at F_1 in packets (bound = Table 1 worst case in r_0*nu
//     units; average = time-averaged F_1 storage with the malicious l_4
//     present).
// The paper's row for statistical FL has no simulated average (N/A); ours
// measures one (at a packet budget two orders beyond PAAI-2's, exactly the
// trade-off the comparison is about).
#include <cmath>
#include <iostream>

#include "analysis/bounds.h"
#include "bench_common.h"
#include "util/csv.h"

using namespace paai;
using namespace paai::runner;

namespace {

struct ProtocolPlan {
  protocols::ProtocolKind kind;
  const char* name;
  std::uint64_t packets;  // budget for detection search
  std::size_t runs;
  double bound_packets;
  double storage_bound_r0nu;
};

double average_storage_at_f1(protocols::ProtocolKind kind, std::size_t runs,
                             std::uint64_t packets, std::size_t jobs) {
  MonteCarloConfig mc;
  mc.base = paper_config(kind, packets, 0);
  mc.base.storage_sample_period = sim::milliseconds(5.0);
  mc.runs = runs;
  mc.seed0 = 7000;
  mc.jobs = jobs;
  mc.storage_bins = 40;
  mc.storage_horizon_seconds =
      static_cast<double>(packets) / mc.base.params.send_rate_pps;
  const MonteCarloResult r = run_monte_carlo(mc);
  // Time-average over the grid, skipping the first 10% (warm-up).
  RunningStat avg;
  const auto& grid = r.storage_grids[1];
  for (std::size_t i = grid.size() / 10; i < grid.size(); ++i) {
    avg.add(grid.stat(i).mean());
  }
  return avg.mean();
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchSession session("bench_table2", argc, argv);
  const auto& args = session.args;
  bench::print_header("Table 2 — detection time and storage: bound vs "
                      "simulated average",
                      "Table 2 (source rate 100 pkt/s, malicious l_4)");

  analysis::Params p;
  p.d = 6;
  p.rho = 0.01;
  p.alpha = 0.03;
  p.sigma = 0.03;
  p.p = 1.0 / 36.0;

  const double r0_nu = 0.0624 /*s*/ * 100.0;  // r_0 bound (62.4 ms) * nu

  const ProtocolPlan plans[] = {
      {protocols::ProtocolKind::kFullAck, "Full-ack", args.scaled(6000),
       args.runs_or(100), analysis::tau_fullack(p),
       analysis::storage_fullack(p).worst},
      {protocols::ProtocolKind::kPaai1, "PAAI-1", args.scaled(120000),
       args.runs_or(40), analysis::tau_paai1(p),
       analysis::storage_paai1(p).worst},
      {protocols::ProtocolKind::kPaai2, "PAAI-2", args.scaled(1000000),
       args.runs_or(12), analysis::tau_paai2(p),
       analysis::storage_paai2(p).worst},
      {protocols::ProtocolKind::kStatisticalFl, "Statistical FL",
       args.scaled(4000000), args.runs_or(4), analysis::tau_statfl(p),
       analysis::storage_statfl(p).worst},
  };

  Table table({"protocol", "bound_min", "avg_min(curve)", "avg_min(per-run)",
               "storage_bound_pkts", "storage_avg_pkts"});

  for (const auto& plan : plans) {
    std::fprintf(stderr, "[table2] %s: %zu runs x %llu packets...\n",
                 plan.name, plan.runs,
                 static_cast<unsigned long long>(plan.packets));
    const auto mc = bench::detection_curve(plan.kind, plan.packets, plan.runs,
                                           14, 100, args.jobs,
                                           session.trace(), &args);
    session.exec(mc.exec);
    const double bound_min = analysis::detection_minutes(plan.bound_packets,
                                                         100.0);
    const double curve_min =
        mc.detection_packets
            ? analysis::detection_minutes(
                  static_cast<double>(*mc.detection_packets), 100.0)
            : -1.0;
    const double per_run_min = analysis::detection_minutes(
        mc.per_run_detection_packets.mean(), 100.0);

    const double storage_avg = average_storage_at_f1(
        plan.kind, std::max<std::size_t>(plan.runs / 4, 3),
        std::min<std::uint64_t>(plan.packets, 20000), args.jobs);

    table.row()
        .cell(plan.name)
        .num(bound_min, 4)
        .num(curve_min, 4)
        .num(per_run_min, 4)
        .num(plan.storage_bound_r0nu * r0_nu, 3)
        .num(storage_avg, 3);

    const std::string prefix = std::string(plan.name) + ".";
    session.metric(prefix + "avg_min_curve", curve_min);
    session.metric(prefix + "avg_min_per_run", per_run_min);
    session.metric(prefix + "storage_avg_pkts", storage_avg);
  }

  table.print(std::cout, args.csv);
  std::printf("\npaper's Table 2 (minutes):   full-ack 0.25/0.17, PAAI-1 "
              "9/4.2, PAAI-2 100/50, stat-FL 3333/N-A\n");
  std::printf("paper's Table 2 (storage):   full-ack 12/3.2, PAAI-1 "
              "3.2/3.0, PAAI-2 12/6.4, stat-FL <1/N-A\n");
  std::printf("(avg_min(curve) = first checkpoint with FP and FN <= "
              "sigma across runs; -1 = not reached in budget)\n");
  return 0;
}
