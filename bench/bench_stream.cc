// Streaming engine throughput & latency (src/stream).
//
// Measures the three costs that size a `paai serve` deployment, one
// stream per score-table family (PAAI-1 = onion ScoreTable, PAAI-2 =
// prefix Paai2ScoreTable, statistical-FL = FlScoreTable):
//
//   parse    events/s through obs::EventReader alone (JSONL decode);
//   apply    events/s through ScoreEngine::apply on pre-parsed events
//            (the pure scoring cost);
//   serve    events/s through serve_stream (reader + engine, the real
//            ingest path);
//   snapshot paai.state.v1 write and restore latency (the cost of
//            --snapshot-every and of a --state-in restart).
//
// Every timing metric here measures the machine, not the protocols —
// cross-snapshot gates ignore this bench (like bench_micro). The
// deterministic shape metrics (events, bytes per event, snapshot bytes)
// are stable and diffable.
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "runner/producer.h"
#include "stream/engine.h"
#include "stream/service.h"
#include "stream/state.h"
#include "util/csv.h"

using namespace paai;
using namespace paai::runner;

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  const auto dt = Clock::now() - t0;
  const double s =
      std::chrono::duration_cast<std::chrono::duration<double>>(dt).count();
  return s > 1e-9 ? s : 1e-9;
}

struct StreamFixture {
  std::string jsonl;
  std::vector<obs::Event> events;
  ExperimentResult batch;
};

StreamFixture produce(protocols::ProtocolKind kind, std::uint64_t packets) {
  std::ostringstream os;
  const StreamProduceResult r =
      run_experiment_to_stream(paper_config(kind, packets, 7), os);
  if (r.events_dropped != 0) {
    std::fprintf(stderr, "bench_stream: producer dropped %llu events\n",
                 static_cast<unsigned long long>(r.events_dropped));
    std::exit(2);
  }
  StreamFixture fx;
  fx.jsonl = os.str();
  fx.batch = r.result;
  std::istringstream is(fx.jsonl);
  std::string error;
  fx.events = obs::EventLog::read_jsonl(is, &error);
  if (fx.events.empty()) {
    std::fprintf(stderr, "bench_stream: reparse failed: %s\n", error.c_str());
    std::exit(2);
  }
  return fx;
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchSession session("bench_stream", argc, argv);
  const auto& args = session.args;
  bench::print_header("Streaming engine — ingest throughput and "
                      "snapshot latency",
                      "src/stream: paai serve / paai replay costs");

  const std::uint64_t packets = args.scaled(20000);
  const std::size_t reps = args.runs_or(5);

  const struct {
    protocols::ProtocolKind kind;
    const char* family;
  } cases[] = {
      {protocols::ProtocolKind::kPaai1, "onion"},
      {protocols::ProtocolKind::kPaai2, "prefix"},
      {protocols::ProtocolKind::kStatisticalFl, "fl"},
  };

  Table t({"protocol", "events", "parse_Mev_s", "apply_Mev_s",
           "serve_Mev_s", "snap_write_us", "snap_restore_us",
           "snap_bytes"});
  for (const auto& c : cases) {
    std::fprintf(stderr, "[stream] %s (%llu packets)...\n",
                 protocols::protocol_name(c.kind),
                 static_cast<unsigned long long>(packets));
    const StreamFixture fx = produce(c.kind, packets);
    const double n_events = static_cast<double>(fx.events.size());
    const std::string prefix =
        std::string("stream.") + protocols::protocol_name(c.kind);
    session.metric(prefix + ".events", n_events);
    session.metric(prefix + ".bytes_per_event",
                   static_cast<double>(fx.jsonl.size()) / n_events);

    // parse: JSONL decode alone.
    auto t0 = Clock::now();
    for (std::size_t rep = 0; rep < reps; ++rep) {
      std::istringstream is(fx.jsonl);
      obs::EventReader reader(is);
      obs::Event e;
      while (reader.next(&e) == obs::EventReader::Status::kEvent) {
      }
    }
    const double parse_eps =
        n_events * static_cast<double>(reps) / seconds_since(t0);

    // apply: scoring alone, on pre-parsed events.
    t0 = Clock::now();
    for (std::size_t rep = 0; rep < reps; ++rep) {
      stream::ScoreEngine engine;
      for (const obs::Event& e : fx.events) engine.apply(e);
    }
    const double apply_eps =
        n_events * static_cast<double>(reps) / seconds_since(t0);

    // serve: the composed ingest path, announcements off.
    stream::ServeConfig serve_cfg;
    serve_cfg.announce = false;
    std::ostringstream sink;
    t0 = Clock::now();
    for (std::size_t rep = 0; rep < reps; ++rep) {
      std::istringstream is(fx.jsonl);
      stream::ScoreEngine engine;
      const stream::ServeReport r =
          serve_stream(engine, is, sink, serve_cfg);
      if (r.failed) {
        std::fprintf(stderr, "bench_stream: serve failed: %s\n",
                     r.error.c_str());
        return 2;
      }
    }
    const double serve_eps =
        n_events * static_cast<double>(reps) / seconds_since(t0);

    // snapshot: write and restore a warm (fully-absorbed) engine.
    stream::ScoreEngine warm;
    for (const obs::Event& e : fx.events) warm.apply(e);
    const std::string snapshot = stream::state_to_string(warm);
    const std::size_t snap_reps = reps * 100;
    t0 = Clock::now();
    for (std::size_t rep = 0; rep < snap_reps; ++rep) {
      const std::string s = stream::state_to_string(warm);
      if (s.size() != snapshot.size()) return 2;  // defeat optimizer
    }
    const double write_us =
        seconds_since(t0) * 1e6 / static_cast<double>(snap_reps);
    t0 = Clock::now();
    for (std::size_t rep = 0; rep < snap_reps; ++rep) {
      stream::ScoreEngine restored;
      std::string error;
      if (!stream::load_state(snapshot, &restored, &error)) {
        std::fprintf(stderr, "bench_stream: restore failed: %s\n",
                     error.c_str());
        return 2;
      }
    }
    const double restore_us =
        seconds_since(t0) * 1e6 / static_cast<double>(snap_reps);

    session.metric(prefix + ".parse_events_per_sec", parse_eps);
    session.metric(prefix + ".apply_events_per_sec", apply_eps);
    session.metric(prefix + ".serve_events_per_sec", serve_eps);
    session.metric(prefix + ".snapshot_write_us", write_us);
    session.metric(prefix + ".snapshot_restore_us", restore_us);
    session.metric(prefix + ".snapshot_bytes",
                   static_cast<double>(snapshot.size()));

    t.row()
        .cell(protocols::protocol_name(c.kind))
        .integer(static_cast<long long>(fx.events.size()))
        .num(parse_eps / 1e6, 3)
        .num(apply_eps / 1e6, 3)
        .num(serve_eps / 1e6, 3)
        .num(write_us, 1)
        .num(restore_us, 1)
        .integer(static_cast<long long>(snapshot.size()));
  }
  t.print(std::cout, args.csv);
  std::printf(
      "\nserve throughput is the deployable number: a paper-rate source "
      "(100 pps, ~16 events/packet) needs ~1.6 kev/s — margin is the "
      "ratio above that\n");
  return 0;
}
