// Robustness under benign faults — the two questions src/faults exists to
// answer:
//
// A. False accusations: run every shipped benign fault plan (bursty loss,
//    link churn, node outages, reordering/duplication — see docs/FAULTS.md)
//    against every protocol on an honest path. The paper's identification
//    guarantee ("an honest link is never identified as faulty", Theorem 2)
//    is only worth having if realistic benign turbulence cannot trip it:
//    the false-accusation rate must be 0 everywhere.
//
// B. Detection degradation: with the paper's adversary on l_4, how much
//    does bursty (Gilbert-Elliott) natural loss on an honest link slow
//    detection down? Burstiness widens the estimator's transient — the
//    detection point moves, the verdict must not.
//
// Sizing: statistical-FL runs with exact counters (fl_sampling = 1), the
// repo-wide convention at sub-1e7-packet scales; sig-ack runs a reduced
// packet budget (W-OTS signing dominates wall time; its detection behaviour
// is full-ack-like, so the faults see plenty of traffic).
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "faults/plan.h"
#include "util/csv.h"

using namespace paai;
using namespace paai::runner;

namespace {

struct ProtocolUnderTest {
  protocols::ProtocolKind kind;
  std::uint64_t packets;
  double pps;
};

// Every protocol at the paper rate, with two sized exceptions:
//  * comb-2 detects 1/p slower by design (Table 1), so it gets a 6x
//    horizon to reach the converged sample count the protocol_test.cc
//    sweeps use — below that, estimator variance alone can convict;
//  * sig-ack signs every packet with W-OTS (~3 CPU-minutes per
//    60k-packet run), so it covers the same 600 s fault horizon (the
//    shipped plans schedule events up to t = 550) at a tenth of the
//    rate and signing cost.
std::vector<ProtocolUnderTest> protocols_under_test(std::uint64_t packets) {
  return {
      {protocols::ProtocolKind::kFullAck, packets, 100.0},
      {protocols::ProtocolKind::kPaai1, packets, 100.0},
      {protocols::ProtocolKind::kPaai2, packets, 100.0},
      {protocols::ProtocolKind::kCombination1, packets, 100.0},
      {protocols::ProtocolKind::kCombination2, packets * 6, 100.0},
      {protocols::ProtocolKind::kStatisticalFl, packets, 100.0},
      {protocols::ProtocolKind::kSigAck, packets / 10, 10.0},
  };
}

ExperimentConfig benign_config(const ProtocolUnderTest& put,
                               std::uint64_t seed,
                               const faults::FaultPlan& plan) {
  ExperimentConfig cfg = paper_config(put.kind, put.packets, seed);
  cfg.params.send_rate_pps = put.pps;
  cfg.link_faults.clear();  // honest path: any conviction is false
  cfg.faults = plan;
  if (put.kind == protocols::ProtocolKind::kStatisticalFl) {
    cfg.params.fl_sampling = 1.0;
  }
  return cfg;
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchSession session("bench_robustness", argc, argv);
  const auto& args = session.args;
  bench::print_header(
      "Robustness — benign faults must not create false accusations",
      "the Theorem 2 guarantee under the src/faults chaos plans");

  const std::uint64_t packets = args.scaled(60000);
  const std::size_t runs = args.runs_or(3);

  // --- A: false-accusation sweep ----------------------------------------
  Table a({"plan", "protocol", "runs", "false_accusations", "max_theta"});
  std::size_t total_false = 0;
  for (const auto& named : faults::benign_plans()) {
    const faults::FaultPlan plan = faults::FaultPlan::parse(named.spec);
    for (const auto& put : protocols_under_test(packets)) {
      std::size_t accusations = 0;
      double max_theta = 0.0;
      for (std::size_t r = 0; r < runs; ++r) {
        const ExperimentResult result =
            run_experiment(benign_config(put, 3000 + r, plan));
        if (!result.final_convicted.empty()) ++accusations;
        for (const double t : result.final_thetas) {
          max_theta = std::max(max_theta, t);
        }
      }
      total_false += accusations;
      session.metric(std::string("false_accuse.") + named.name + "." +
                         protocols::protocol_name(put.kind),
                     static_cast<double>(accusations));
      a.row()
          .cell(named.name)
          .cell(protocols::protocol_name(put.kind))
          .integer(static_cast<long long>(runs))
          .integer(static_cast<long long>(accusations))
          .num(max_theta, 4);
    }
  }
  a.print(std::cout, args.csv);
  session.metric("false_accusations_total",
                 static_cast<double>(total_false));
  std::printf("\n%s\n\n",
              total_false == 0
                  ? "no honest link convicted under any benign plan"
              : args.scale < 1.0
                  ? "false accusations at reduced --scale (estimator "
                    "variance; expected at small sample sizes)"
                  : "FALSE ACCUSATIONS DETECTED — invariant violated");

  // --- B: detection degradation under bursty loss -----------------------
  // The paper's adversary (l_4 at ~alpha = 0.03) with calibrated bursty
  // natural loss on honest l_2; same stationary rate as rho, arriving in
  // bursts. Detection must still converge to exactly {l_4} — only the
  // transient may stretch.
  const char* kBurst = "ge@2:pg=0.005,pb=0.3,g2b=0.003,b2g=0.15";
  Table b({"protocol", "condition", "detection_pkts", "final_fp",
           "final_fn"});
  for (const auto kind : {protocols::ProtocolKind::kFullAck,
                          protocols::ProtocolKind::kPaai1,
                          protocols::ProtocolKind::kPaai2}) {
    for (const bool bursty : {false, true}) {
      MonteCarloConfig mc;
      mc.base = paper_config(kind, packets, 0);
      if (bursty) mc.base.faults = faults::FaultPlan::parse(kBurst);
      mc.base.checkpoints = log_checkpoints(100, packets, 16);
      mc.runs = args.runs_or(6);
      mc.seed0 = 500;
      mc.malicious_links = {4};
      mc.sigma = 0.03;
      args.apply_adversaries(mc);
      mc.jobs = args.jobs;
      mc.trace = session.trace();
      const MonteCarloResult r = run_monte_carlo(mc);
      session.exec(r.exec);

      const std::string prefix = std::string("degradation.") +
                                 protocols::protocol_name(kind) +
                                 (bursty ? ".bursty" : ".clean");
      if (r.detection_packets) {
        session.metric(prefix + ".detection_packets",
                       static_cast<double>(*r.detection_packets));
      }
      session.metric(prefix + ".final_fp", r.curve.back().fp);
      session.metric(prefix + ".final_fn", r.curve.back().fn);
      b.row()
          .cell(protocols::protocol_name(kind))
          .cell(bursty ? "bursty l_2" : "clean")
          .cell(r.detection_packets
                    ? std::to_string(*r.detection_packets)
                    : std::string("not converged"))
          .num(r.curve.back().fp, 3)
          .num(r.curve.back().fn, 3);
    }
  }
  b.print(std::cout, args.csv);
  std::printf(
      "\nburstiness may stretch the transient; the final verdict (fp = "
      "fn = 0 at the horizon) must hold in both conditions\n");

  // --- C: detection-vs-stealth frontier ---------------------------------
  // Adaptive adversaries trade damage for detectability. For each strategy
  // point we measure both axes over Monte-Carlo runs:
  //   achieved   = ground-truth data loss on the adversary's downstream
  //                link l_4 (what the attack actually cost the data plane;
  //                rho = 0.01 of it is natural);
  //   theta_4    = the scorer's estimate of that link (what detection saw);
  //   undetected = fraction of runs NOT convicting l_4 at the horizon.
  // The frontier is the curve those points trace: strategies riding under
  // psi_th (stealth margin < 1) or hiding in benign cover must buy their
  // invisibility with proportionally less damage — an adversary that does
  // real damage gets caught, one that stays hidden is bounded to
  // threshold-level loss. Colluder points run with the calibrated bursty
  // plan on honest l_2 as cover.
  struct FrontierPoint {
    const char* label;
    const char* spec;
    const char* cover;  // benign fault plan providing the hiding windows
  };
  const std::vector<FrontierPoint> frontier = {
      {"stealth-m050", "stealth@4:margin=0.5", ""},
      {"stealth-m090", "stealth@4:margin=0.9", ""},
      {"stealth-m120", "stealth@4:margin=1.2", ""},
      {"onoff-d25", "onoff@4:rate=0.25,on=5,off=15", ""},
      {"onoff-d75", "onoff@4:rate=0.25,on=15,off=5", ""},
      {"collude-r05", "collude@4:rate=0.5", kBurst},
      {"collude-r10", "collude@4:rate=1", kBurst},
      {"probeshy-c5", "probeshy@4:rate=0.05,cooldown=5", ""},
  };
  Table c({"strategy", "protocol", "true_l4_loss", "est_theta4",
           "undetected", "fp", "detect_pkts"});
  // Each point runs the three reference protocols; colluder points add
  // PAAI-1 rows under the multi-level blame modes (docs/DETECTORS.md):
  //   persistent:3  — K repeated first-failing-hop observations;
  //   windowed:192  — flagrant-window clause only. An expected NEGATIVE
  //                   result: PAAI-1 samples ~1/36 of packets, so a
  //                   GE-cover burst never fills a 192-unit window past
  //                   the flagrant bar — the row documents why windowed
  //                   alone cannot catch a fault-colluder at this rate;
  //   hybrid:4,192  — adds the hot-window streak clause gated on the
  //                   cumulative floor; the sustained r=1 colluder keeps
  //                   >= 4 consecutive hot windows while honest churn
  //                   cannot, so this row is the one that convicts.
  struct Contender {
    protocols::ProtocolKind kind;
    const char* blame;  // BlameSpec grammar ("" = margin)
    const char* name;   // nullptr = protocol_name(kind)
  };
  for (const auto& point : frontier) {
    const adversary::AdversaryPlan plan =
        adversary::AdversaryPlan::parse(point.spec);
    std::vector<Contender> contenders = {
        {protocols::ProtocolKind::kFullAck, "", nullptr},
        {protocols::ProtocolKind::kPaai1, "", nullptr},
        {protocols::ProtocolKind::kPaai2, "", nullptr},
    };
    if (std::string(point.label).rfind("collude", 0) == 0) {
      contenders.push_back({protocols::ProtocolKind::kPaai1, "persistent:3",
                            "paai1-persistent"});
      contenders.push_back({protocols::ProtocolKind::kPaai1, "windowed:192",
                            "paai1-windowed"});
      contenders.push_back({protocols::ProtocolKind::kPaai1, "hybrid:4,192",
                            "paai1-hybrid"});
    }
    for (const auto& contender : contenders) {
      const auto kind = contender.kind;
      const char* pname = contender.name ? contender.name
                                         : protocols::protocol_name(kind);
      MonteCarloConfig mc;
      mc.base = paper_config(kind, packets, 0);
      if (contender.blame[0] != '\0') {
        mc.base.params.blame = protocols::BlameSpec::parse(contender.blame);
      }
      mc.base.link_faults.clear();  // the strategy IS the adversary
      mc.base.adversaries = plan.specs;
      if (point.cover[0] != '\0') {
        mc.base.faults = faults::FaultPlan::parse(point.cover);
      }
      mc.base.checkpoints = log_checkpoints(100, packets, 12);
      mc.runs = args.runs_or(3);
      mc.seed0 = 900;
      mc.malicious_links = {4};
      mc.sigma = 0.03;
      mc.jobs = args.jobs;
      mc.trace = session.trace();
      const MonteCarloResult r = run_monte_carlo(mc);
      session.exec(r.exec);

      const double achieved = r.true_link_loss[4].mean();
      const double theta = r.final_thetas[4].mean();
      const double undetected = r.curve.back().fn;
      const double fp = r.curve.back().fp;
      const std::string prefix =
          std::string("frontier.") + point.label + "." + pname;
      session.metric(prefix + ".achieved", achieved);
      session.metric(prefix + ".theta", theta);
      session.metric(prefix + ".undetected", undetected);
      session.metric(prefix + ".fp", fp);
      if (r.detection_packets) {
        session.metric(prefix + ".detection_packets",
                       static_cast<double>(*r.detection_packets));
      }
      c.row()
          .cell(point.label)
          .cell(pname)
          .num(achieved, 4)
          .num(theta, 4)
          .num(undetected, 3)
          .num(fp, 3)
          .cell(r.detection_packets ? std::to_string(*r.detection_packets)
                                    : std::string("evaded"));
    }
  }
  c.print(std::cout, args.csv);
  std::printf(
      "\nfrontier reading: high true_l4_loss with 'evaded' = a detection "
      "gap; stealth points are *designed* to evade by capping their own "
      "damage near psi_th, so 'evaded' with true_l4_loss <~ threshold is "
      "the estimator working as specified, not a failure\n");

  // The invariant is only meaningful at full sample size; reduced --scale
  // runs are smoke tests where estimator variance alone can convict.
  return (total_false == 0 || args.scale < 1.0) ? 0 : 1;
}
