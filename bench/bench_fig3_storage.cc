// Figures 3(a) and 3(b): storage overhead of node F_1 over time, for
// full-ack / PAAI-1 / PAAI-2 at source rates 1000 and 100 packets/second,
// 2000 data packets total, malicious l_4 present. Within that budget only
// the full-ack scheme reaches its converged condition (~10^3 packets), so
// — exactly like the paper — full-ack is additionally shown with the
// adversary bypassed at packet 1000 ("w/ AAI").
#include <iostream>
#include <vector>

#include "bench_common.h"
#include "util/csv.h"

using namespace paai;
using namespace paai::runner;

namespace {

struct Column {
  protocols::ProtocolKind kind;
  const char* label;
  std::uint64_t bypass_after;  // 0 = w/o AAI
};

void run_rate(bench::BenchSession& session, double rate_pps,
              std::size_t runs, bool csv, std::size_t jobs) {
  const std::uint64_t packets = 2000;
  const double horizon =
      static_cast<double>(packets) / rate_pps * 1.1;

  const Column columns[] = {
      {protocols::ProtocolKind::kFullAck, "full-ack_w/o_AAI", 0},
      {protocols::ProtocolKind::kFullAck, "full-ack_w/_AAI", 1000},
      {protocols::ProtocolKind::kPaai1, "PAAI-1_w/o_AAI", 0},
      {protocols::ProtocolKind::kPaai2, "PAAI-2_w/o_AAI", 0},
  };

  std::vector<SeriesGrid> grids;
  for (const Column& col : columns) {
    MonteCarloConfig mc;
    mc.base = paper_config(col.kind, packets, 0);
    mc.base.params.send_rate_pps = rate_pps;
    mc.base.storage_sample_period =
        sim::milliseconds(1000.0 / rate_pps);  // once per packet slot
    mc.base.bypass_after_packets = col.bypass_after;
    session.args.apply_adversaries(mc);
    mc.runs = runs;
    mc.seed0 = 3000;
    mc.jobs = jobs;
    mc.storage_bins = 40;
    mc.storage_horizon_seconds = horizon;
    mc.trace = session.trace();
    std::fprintf(stderr, "[fig3] %s @%g pps...\n", col.label, rate_pps);
    const MonteCarloResult result = run_monte_carlo(mc);
    session.exec(result.exec);
    grids.push_back(result.storage_grids[1]);
  }

  std::printf("\n-- F_1 storage vs time, source rate %g pkt/s "
              "(mean packets stored over %zu runs) --\n",
              rate_pps, runs);
  Table table({"time_s", columns[0].label, columns[1].label,
               columns[2].label, columns[3].label});
  for (std::size_t i = 0; i < grids[0].size(); ++i) {
    auto& row = table.row().num(grids[0].x(i), 3);
    for (const auto& g : grids) row.num(g.stat(i).mean(), 2);
  }
  table.print(std::cout, csv);

  // Time-averaged F_1 storage per column (skipping the first 10% warm-up)
  // as the machine-readable series summary.
  for (std::size_t c = 0; c < grids.size(); ++c) {
    RunningStat avg;
    for (std::size_t i = grids[c].size() / 10; i < grids[c].size(); ++i) {
      avg.add(grids[c].stat(i).mean());
    }
    session.metric("f1_storage_mean." + std::to_string(rate_pps) + "pps." +
                       columns[c].label,
                   avg.mean());
  }
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchSession session("bench_fig3_storage", argc, argv);
  const auto& args = session.args;
  bench::print_header("Figure 3(a)/(b) — storage overhead of F_1",
                      "Figures 3(a) (1000 pkt/s) and 3(b) (100 pkt/s)");
  const std::size_t runs = args.runs_or(30);
  run_rate(session, 1000.0, runs, args.csv, args.jobs);
  run_rate(session, 100.0, runs, args.csv, args.jobs);
  std::printf("\npaper's qualitative claims to check: storage scales "
              "~linearly with the sending rate; PAAI-1 holds the least "
              "state w/o AAI; full-ack w/ AAI drops to the lowest level "
              "after the bypass at packet 1000.\n");
  return 0;
}
