// Design-choice ablations: run PAAI-1 with each of its two security
// mechanisms disabled and show the attack that mechanism exists to stop.
//
// A. Delayed sampling (§5). Safe configuration: the probe trails its data
//    packet by more than the timestamp freshness window. Ablated: the
//    probe follows almost immediately, so a withholding node can park
//    every packet, learn from the probe whether it is monitored, forward
//    the (still fresh) monitored ones and silently drop the rest — the
//    source sees a clean path while ~(1-p) of the traffic dies.
//
// B. Onion reports (§5 fn. 6). Safe: nested MACs mean an upstream
//    adversary can only truncate at its own position. Ablated
//    (independent per-node acks): the adversary at F_1 drops every ack
//    whose origin is >= 3 and thereby frames honest link l_2.
#include <algorithm>
#include <iostream>

#include "bench_common.h"
#include "util/csv.h"

using namespace paai;
using namespace paai::runner;

namespace {

std::string links_of(const std::vector<std::size_t>& v) {
  if (v.empty()) return "-";
  std::string out;
  for (const auto l : v) out += "l_" + std::to_string(l) + " ";
  return out;
}

ExperimentConfig base_config(std::uint64_t seed) {
  ExperimentConfig cfg = paper_config(protocols::ProtocolKind::kPaai1,
                                      40000, seed);
  cfg.link_faults.clear();
  cfg.params.probe_probability = 1.0 / 9.0;
  cfg.params.send_rate_pps = 500.0;
  return cfg;
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchSession session("bench_ablation", argc, argv);
  const auto& args = session.args;
  bench::print_header("Ablation — why delayed sampling and onion reports",
                      "the design arguments of §5");

  // --- A: delayed sampling vs the withholding adversary ------------------
  Table a({"probe delay", "data delivered", "failure rate seen by S",
           "convicted", "outcome"});
  for (const bool safe : {true, false}) {
    ExperimentConfig cfg = base_config(2024);
    if (!safe) cfg.params.unsafe_probe_delay_ms = 1.0;
    AdversarySpec spec;
    spec.node = 3;
    spec.kind = AdversarySpec::Kind::kWithholdRelease;
    spec.rate = 1.0;  // withhold everything; release only if probed
    cfg.adversaries.push_back(spec);
    args.apply_adversaries(cfg);

    const ExperimentResult r = run_experiment(cfg);
    // Ground truth: fraction of data crossings vs a clean run (~d per pkt).
    const double delivered =
        static_cast<double>(r.data_link_crossings) /
        (static_cast<double>(r.packets_sent) * 6.0);
    const bool caught = !r.final_convicted.empty();
    session.metric(std::string("delayed_sampling.") +
                       (safe ? "safe" : "ablated") + ".delivered",
                   delivered);
    session.metric(std::string("delayed_sampling.") +
                       (safe ? "safe" : "ablated") + ".caught",
                   caught ? 1.0 : 0.0);
    a.row()
        .cell(safe ? "safe (> freshness window)" : "ABLATED (1 ms)")
        .num(delivered, 3)
        .num(r.observed_e2e_rate, 3)
        .cell(links_of(r.final_convicted))
        .cell(safe ? (caught ? "attack localized" : "MISSED")
                   : (caught ? "(still caught)" : "EVADED — dropped ~90% "
                               "of data, looks clean"));
  }
  std::printf("-- A: withhold-until-probed adversary at F_3 "
              "(withholds 100%% of data) --\n");
  a.print(std::cout, args.csv);

  // --- B: onion reports vs the origin-filter framing attack --------------
  Table b({"ack scheme", "convicted", "frames honest link?"});
  for (const bool onion : {true, false}) {
    ExperimentConfig cfg = base_config(2025);
    cfg.params.paai1_independent_acks = !onion;
    AdversarySpec spec;
    spec.node = 1;  // upstream adversary on the ack path
    spec.kind = AdversarySpec::Kind::kOriginFilter;
    spec.min_origin = 3;  // suppress acks of F_3.. to frame l_2
    cfg.adversaries.push_back(spec);
    args.apply_adversaries(cfg);

    const ExperimentResult r = run_experiment(cfg);
    bool framed = false;
    for (const std::size_t link : r.final_convicted) {
      if (link != 0 && link != 1) framed = true;  // non-adjacent to F_1
    }
    session.metric(std::string("onion_reports.") +
                       (onion ? "safe" : "ablated") + ".framed",
                   framed ? 1.0 : 0.0);
    b.row()
        .cell(onion ? "onion reports (PAAI-1)" : "ABLATED (independent acks)")
        .cell(links_of(r.final_convicted))
        .cell(framed ? "YES — honest link convicted" : "no (adjacent only)");
  }
  std::printf("\n-- B: origin-filter ack dropper at F_1 targeting "
              "origins >= 3 --\n");
  b.print(std::cout, args.csv);

  std::printf("\nconclusion: both mechanisms are load-bearing — removing "
              "either re-enables the §5 attacks.\n");
  return 0;
}
