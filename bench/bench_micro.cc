// Micro-benchmarks (google-benchmark): crypto primitive throughput, onion
// report build/verify, event-queue operations, and whole-simulation
// packet throughput. Not a paper figure — these bound how far the
// Monte-Carlo sweeps can be scaled on one core.
#include <benchmark/benchmark.h>

#include <vector>

#include "bench_common.h"
#include "crypto/hmac.h"
#include "crypto/keystore.h"
#include "crypto/provider.h"
#include "crypto/sha256.h"
#include "crypto/siphash.h"
#include "net/onion.h"
#include "obs/events.h"
#include "obs/metrics.h"
#include "runner/experiment.h"
#include "sim/simulator.h"

namespace {

using namespace paai;

void BM_Sha256_1KB(benchmark::State& state) {
  Bytes data(1024, 0xab);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        crypto::Sha256::digest(ByteView(data.data(), data.size())));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * 1024);
}
BENCHMARK(BM_Sha256_1KB);

void BM_HmacSha256_64B(benchmark::State& state) {
  Bytes key(32, 0x11), msg(64, 0x22);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        crypto::hmac_sha256(ByteView(key.data(), key.size()),
                            ByteView(msg.data(), msg.size())));
  }
}
BENCHMARK(BM_HmacSha256_64B);

void BM_SipHash_64B(benchmark::State& state) {
  crypto::Key128 key{};
  Bytes msg(64, 0x33);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        crypto::siphash24(key, ByteView(msg.data(), msg.size())));
  }
}
BENCHMARK(BM_SipHash_64B);

void BM_ProviderMac(benchmark::State& state) {
  const auto kind = state.range(0) == 0 ? crypto::CryptoKind::kReal
                                        : crypto::CryptoKind::kFast;
  const auto provider = crypto::make_crypto(kind);
  const crypto::Key key = crypto::test_master_key(1);
  Bytes msg(40, 0x44);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        provider->mac(key, ByteView(msg.data(), msg.size())));
  }
  state.SetLabel(kind == crypto::CryptoKind::kReal ? "real" : "fast");
}
BENCHMARK(BM_ProviderMac)->Arg(0)->Arg(1);

void BM_OnionBuildVerify(benchmark::State& state) {
  const std::size_t d = static_cast<std::size_t>(state.range(0));
  const auto provider = crypto::make_fast_crypto();
  const crypto::KeyStore ks(crypto::test_master_key(2), d);
  std::vector<crypto::Key> keys(d + 1);
  for (std::size_t i = 1; i <= d; ++i) keys[i] = ks.node_key(i);
  const Bytes report = {0x01, 0x02, 0x03, 0x04, 0x05};

  for (auto _ : state) {
    Bytes onion = net::onion_originate(*provider, keys[d],
                                       static_cast<std::uint8_t>(d),
                                       ByteView(report.data(), report.size()));
    for (std::size_t i = d; i-- > 1;) {
      onion = net::onion_wrap(*provider, keys[i],
                              static_cast<std::uint8_t>(i),
                              ByteView(report.data(), report.size()),
                              ByteView(onion.data(), onion.size()));
    }
    const auto result = net::onion_verify(
        *provider, keys, d, ByteView(onion.data(), onion.size()),
        [](std::uint8_t, ByteView) { return true; });
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_OnionBuildVerify)->Arg(6)->Arg(12);

void BM_EventQueue(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator s;
    for (int i = 0; i < 1000; ++i) {
      s.after((i * 7919) % 1000, [] {});
    }
    s.run();
    benchmark::DoNotOptimize(s.events_processed());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 1000);
}
BENCHMARK(BM_EventQueue);

void BM_EndToEndSimulation(benchmark::State& state) {
  const auto kind = static_cast<protocols::ProtocolKind>(state.range(0));
  std::uint64_t packets_total = 0;
  for (auto _ : state) {
    runner::ExperimentConfig cfg = runner::paper_config(kind, 2000, 1);
    cfg.params.send_rate_pps = 1000.0;
    const auto result = runner::run_experiment(cfg);
    benchmark::DoNotOptimize(result.observations);
    packets_total += result.packets_sent;
  }
  state.SetItemsProcessed(static_cast<int64_t>(packets_total));
  state.SetLabel(protocols::protocol_name(kind));
}
BENCHMARK(BM_EndToEndSimulation)
    ->Arg(static_cast<int>(protocols::ProtocolKind::kFullAck))
    ->Arg(static_cast<int>(protocols::ProtocolKind::kPaai1))
    ->Arg(static_cast<int>(protocols::ProtocolKind::kPaai2))
    ->Unit(benchmark::kMillisecond);

// --- src/obs overhead: the disabled registry must cost ~one relaxed
// load + branch per call site (the <3% budget of the sim hot paths). ---

void BM_CounterAddDisabled(benchmark::State& state) {
  auto& reg = obs::MetricsRegistry::global();
  reg.reset();
  reg.set_enabled(false);
  const obs::Counter c = reg.counter("micro.counter");
  for (auto _ : state) c.add();
}
BENCHMARK(BM_CounterAddDisabled);

void BM_CounterAddEnabled(benchmark::State& state) {
  auto& reg = obs::MetricsRegistry::global();
  reg.reset();
  reg.set_enabled(true);
  const obs::Counter c = reg.counter("micro.counter");
  for (auto _ : state) c.add();
  reg.set_enabled(false);
}
BENCHMARK(BM_CounterAddEnabled);

// The forensic event log's disabled path is a null-pointer test at the
// ProtocolContext::log_event call site — model it exactly.
void BM_EventLogAppendDisabled(benchmark::State& state) {
  obs::EventLog* log = nullptr;
  benchmark::DoNotOptimize(log);
  std::uint64_t v = 1;
  for (auto _ : state) {
    if (log != nullptr) {
      log->append(0, obs::EventKind::kScoreClean,
                  static_cast<std::int64_t>(v), -1, v, v, 0.0);
    }
    v = v * 2862933555777941757ULL + 3037000493ULL;  // cheap lcg
    benchmark::DoNotOptimize(v);
  }
}
BENCHMARK(BM_EventLogAppendDisabled);

void BM_EventLogAppendEnabled(benchmark::State& state) {
  obs::EventLog log(/*per_node_capacity=*/1 << 12);
  std::uint64_t v = 1;
  for (auto _ : state) {
    log.append(static_cast<std::uint16_t>(v & 7), obs::EventKind::kScoreClean,
               static_cast<std::int64_t>(v), static_cast<std::int32_t>(v & 3),
               v, v, 0.5);
    v = v * 2862933555777941757ULL + 3037000493ULL;  // cheap lcg
  }
  benchmark::DoNotOptimize(log.recorded());
}
BENCHMARK(BM_EventLogAppendEnabled);

void BM_HistogramObserveEnabled(benchmark::State& state) {
  auto& reg = obs::MetricsRegistry::global();
  reg.reset();
  reg.set_enabled(true);
  const obs::Histogram h = reg.histogram("micro.histogram");
  std::uint64_t v = 1;
  for (auto _ : state) {
    h.observe(v);
    v = v * 2862933555777941757ULL + 3037000493ULL;  // cheap lcg
  }
  reg.set_enabled(false);
}
BENCHMARK(BM_HistogramObserveEnabled);

/// Console reporter that additionally records every benchmark's adjusted
/// real time into the --metrics-out document.
class RecordingReporter : public benchmark::ConsoleReporter {
 public:
  explicit RecordingReporter(paai::bench::BenchSession& session)
      : session_(session) {}

  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& run : runs) {
      if (run.error_occurred) continue;
      session_.metric(run.benchmark_name() + ".real_ns",
                      run.GetAdjustedRealTime());
    }
    ConsoleReporter::ReportRuns(runs);
  }

 private:
  paai::bench::BenchSession& session_;
};

}  // namespace

int main(int argc, char** argv) {
  // The shared bench flags are ours, not google-benchmark's: consume them
  // before Initialize() sees (and rejects) them.
  paai::bench::BenchSession session("bench_micro", argc, argv);
  std::vector<char*> remaining;
  remaining.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--metrics-out", 0) == 0 ||
        arg.rfind("--trace-out", 0) == 0 || arg.rfind("--runs", 0) == 0 ||
        arg.rfind("--scale", 0) == 0 || arg.rfind("--jobs", 0) == 0 ||
        arg == "--csv") {
      // "--flag value" two-token form: swallow the value too.
      if ((arg == "--metrics-out" || arg == "--trace-out") && i + 1 < argc) {
        ++i;
      }
      continue;
    }
    remaining.push_back(argv[i]);
  }
  int filtered_argc = static_cast<int>(remaining.size());
  benchmark::Initialize(&filtered_argc, remaining.data());
  if (benchmark::ReportUnrecognizedArguments(filtered_argc,
                                             remaining.data())) {
    return 1;
  }
  RecordingReporter reporter(session);
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  return 0;
}
