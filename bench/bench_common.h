// Shared helpers for the bench binaries that regenerate the paper's tables
// and figures. Each binary accepts:
//   --csv          emit CSV instead of aligned columns
//   --runs=N       Monte-Carlo runs (also env PAAI_RUNS); the paper used
//                  10000 — defaults here are sized for a single core, and
//                  the curves are already stable
//   --scale=X      multiply default packet budgets (env PAAI_SCALE)
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>

#include "runner/montecarlo.h"
#include "util/csv.h"

namespace paai::bench {

struct BenchArgs {
  bool csv = false;
  long long runs = 0;      // 0 = per-bench default
  double scale = 1.0;

  static BenchArgs parse(int argc, char** argv) {
    BenchArgs args;
    args.csv = has_flag(argc, argv, "--csv");
    args.runs = flag_or_env(argc, argv, "--runs", "PAAI_RUNS", 0);
    args.scale = static_cast<double>(
                     flag_or_env(argc, argv, "--scale", "PAAI_SCALE", 100)) /
                 100.0;
    return args;
  }

  std::size_t runs_or(std::size_t dflt) const {
    return runs > 0 ? static_cast<std::size_t>(runs) : dflt;
  }

  std::uint64_t scaled(std::uint64_t packets) const {
    return static_cast<std::uint64_t>(static_cast<double>(packets) * scale);
  }
};

inline void print_header(const char* title, const char* paper_ref) {
  std::printf("== %s ==\n(reproduces %s; see EXPERIMENTS.md for the "
              "paper-vs-measured record)\n\n",
              title, paper_ref);
}

/// Measured detection point of a protocol: runs Monte-Carlo over a
/// log-spaced checkpoint grid; returns the MC result.
inline runner::MonteCarloResult detection_curve(
    protocols::ProtocolKind kind, std::uint64_t packets, std::size_t runs,
    std::size_t grid_points = 16, std::uint64_t first_checkpoint = 100) {
  runner::MonteCarloConfig mc;
  mc.base = runner::paper_config(kind, packets, 0);
  mc.base.checkpoints =
      runner::log_checkpoints(first_checkpoint, packets, grid_points);
  mc.runs = runs;
  mc.seed0 = 1000;
  mc.malicious_links = {4};
  mc.sigma = 0.03;
  return runner::run_monte_carlo(mc);
}

}  // namespace paai::bench
