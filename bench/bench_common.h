// Shared helpers for the bench binaries that regenerate the paper's tables
// and figures. Each binary accepts:
//   --csv               emit CSV instead of aligned columns
//   --runs=N            Monte-Carlo runs (also env PAAI_RUNS); the paper
//                       used 10000 — defaults here are sized for a single
//                       core, and the curves are already stable
//   --scale=X           multiply default packet budgets (env PAAI_SCALE)
//   --jobs=N            worker threads for the Monte-Carlo fan-out (also
//                       env PAAI_JOBS); default 0 = hardware concurrency.
//                       Results are bit-identical for any value.
//   --metrics-out FILE  write a machine-readable "paai.bench.v1" JSON
//                       document (paper metrics + wall time + exec
//                       telemetry + src/obs counters; see
//                       docs/OBSERVABILITY.md) and enable the global
//                       metrics registry for the process
//   --trace-out FILE    write a Chrome trace_event JSON (load in
//                       chrome://tracing or https://ui.perfetto.dev)
//   --telemetry-out FILE  stream live "paai.telemetry.v1" JSONL samples
//                       (obs/telemetry.h); enables the metrics registry
//                       and the phase self-profiler for the process
//   --telemetry-every N sampling cadence in bench work units (also env
//                       PAAI_TELEMETRY_EVERY; default 10000)
//   --faults SPEC       scripted benign fault plan (compact grammar or
//                       JSON; see docs/FAULTS.md) applied to every run
//   --adversary SPEC    declarative adversary plan (compact grammar or
//                       JSON; see docs/ADVERSARIES.md) applied to every
//                       run — replaces the bench's built-in adversary
// Malformed integer flag/env values are a hard error (exit 2), never a
// silent default; a malformed --faults or --adversary spec throws from
// parse() with a diagnostic naming the offending clause.
#pragma once

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <memory>
#include <optional>
#include <string>
#include <string_view>

#include "adversary/spec.h"
#include "faults/plan.h"
#include "obs/metrics.h"
#include "obs/profile.h"
#include "obs/report.h"
#include "obs/telemetry.h"
#include "obs/tracer.h"
#include "runner/montecarlo.h"
#include "util/csv.h"
#include "util/specgrammar.h"

namespace paai::bench {

struct BenchArgs {
  bool csv = false;
  long long runs = 0;      // 0 = per-bench default
  double scale = 1.0;
  std::size_t jobs = 0;    // 0 = hardware concurrency
  std::optional<std::string> metrics_out;
  std::optional<std::string> trace_out;
  std::optional<std::string> telemetry_out;
  long long telemetry_every = 0;  // 0 = the 10000-unit default
  faults::FaultPlan faults{};
  adversary::AdversaryPlan adversaries{};

  static BenchArgs parse(int argc, char** argv) {
    BenchArgs args;
    args.csv = has_flag(argc, argv, "--csv");
    args.runs = flag_or_env(argc, argv, "--runs", "PAAI_RUNS", 0);
    args.scale = static_cast<double>(
                     flag_or_env(argc, argv, "--scale", "PAAI_SCALE", 100)) /
                 100.0;
    const long long jobs = flag_or_env(argc, argv, "--jobs", "PAAI_JOBS", 0);
    args.jobs = jobs > 0 ? static_cast<std::size_t>(jobs) : 0;
    args.metrics_out = flag_str(argc, argv, "--metrics-out");
    args.trace_out = flag_str(argc, argv, "--trace-out");
    args.telemetry_out = flag_str(argc, argv, "--telemetry-out");
    args.telemetry_every =
        flag_or_env(argc, argv, "--telemetry-every", "PAAI_TELEMETRY_EVERY", 0);
    if (const auto spec = flag_str(argc, argv, "--faults")) {
      args.faults = faults::FaultPlan::parse(*spec);
    }
    if (const auto spec = flag_str(argc, argv, "--adversary")) {
      // Parse only what is recognizably the plan grammar (compact clauses
      // carry '@', JSON starts with '[' or '{'); anything else is left for
      // the program — the paai CLI accepts a legacy NODE:KIND:RATE form
      // through the same argv.
      const std::string_view t = util::spec_trim(*spec);
      if (!t.empty() &&
          (t.find('@') != std::string_view::npos || t.front() == '[' ||
           t.front() == '{')) {
        args.adversaries = adversary::AdversaryPlan::parse(*spec);
      }
    }
    return args;
  }

  std::size_t runs_or(std::size_t dflt) const {
    return runs > 0 ? static_cast<std::size_t>(runs) : dflt;
  }

  /// Applies --adversary to an experiment config: replaces the bench's
  /// built-in adversary (strategy specs AND composed link faults) with the
  /// user's plan. Returns true when a plan was applied; callers tracking
  /// ground truth must then retarget the malicious set (node N charges its
  /// downstream link l_N).
  bool apply_adversaries(runner::ExperimentConfig& cfg) const {
    if (adversaries.empty()) return false;
    cfg.adversaries.assign(adversaries.specs.begin(),
                           adversaries.specs.end());
    cfg.link_faults.clear();
    return true;
  }

  /// Monte-Carlo variant: also retargets malicious_links to the plan's
  /// compromised nodes.
  bool apply_adversaries(runner::MonteCarloConfig& mc) const {
    if (!apply_adversaries(mc.base)) return false;
    mc.malicious_links.clear();
    for (const auto& spec : adversaries.specs) {
      mc.malicious_links.push_back(spec.node);
    }
    return true;
  }

  std::uint64_t scaled(std::uint64_t packets) const {
    return static_cast<std::uint64_t>(static_cast<double>(packets) * scale);
  }
};

/// RAII wrapper every bench main() starts with: parses the shared flags,
/// enables the global metrics registry when --metrics-out/--trace-out is
/// given, and writes the JSON documents on destruction. With neither flag
/// the registry stays disabled and the session costs nothing.
class BenchSession {
 public:
  BenchSession(std::string name, int argc, char** argv)
      : args(BenchArgs::parse(argc, argv)),
        report_(name),
        start_(std::chrono::steady_clock::now()) {
    if (args.metrics_out || args.trace_out || args.telemetry_out) {
      auto& reg = obs::MetricsRegistry::global();
      reg.reset();
      reg.set_enabled(true);
    }
    if (args.trace_out) {
      trace_ = std::make_unique<obs::TraceRing>(std::size_t{1} << 16);
    }
    if (args.telemetry_out) {
      auto& prof = obs::PhaseProfiler::global();
      prof.reset();
      prof.set_enabled(true);
      telemetry_ = std::make_unique<obs::TelemetrySink>(
          *args.telemetry_out,
          args.telemetry_every > 0
              ? static_cast<std::uint64_t>(args.telemetry_every)
              : 10000);
      if (!telemetry_->ok()) {
        std::fprintf(stderr, "error: cannot write telemetry to %s\n",
                     args.telemetry_out->c_str());
        telemetry_.reset();
      }
    }
    report_.set_arg("runs", args.runs);
    report_.set_arg("scale_percent",
                    static_cast<long long>(args.scale * 100.0 + 0.5));
    report_.set_arg("jobs", static_cast<long long>(args.jobs));
  }

  BenchSession(const BenchSession&) = delete;
  BenchSession& operator=(const BenchSession&) = delete;

  ~BenchSession() {
    if (telemetry_ != nullptr) telemetry_->final_sample();
    if (args.metrics_out) {
      const double wall =
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        start_)
              .count();
      report_.set_wall_seconds(wall);
      std::ofstream os(*args.metrics_out);
      if (!os) {
        std::fprintf(stderr, "error: cannot write metrics to %s\n",
                     args.metrics_out->c_str());
      } else {
        report_.write(os, obs::MetricsRegistry::global().snapshot());
      }
    }
    if (args.trace_out && trace_ != nullptr) {
      std::ofstream os(*args.trace_out);
      if (!os) {
        std::fprintf(stderr, "error: cannot write trace to %s\n",
                     args.trace_out->c_str());
      } else {
        trace_->write_chrome_json(os);
      }
    }
  }

  /// nullptr unless --trace-out was given; pass to MonteCarloConfig.trace.
  obs::TraceRing* trace() { return trace_.get(); }

  /// nullptr unless --telemetry-out was given; pass to
  /// MonteCarloConfig/MeshConfig/ServeConfig telemetry.
  obs::TelemetrySink* telemetry() { return telemetry_.get(); }

  void metric(std::string name, double value) {
    report_.set_metric(std::move(name), value);
  }
  void info(std::string name, std::string value) {
    report_.set_info(std::move(name), std::move(value));
  }
  void arg(std::string name, long long value) {
    report_.set_arg(std::move(name), value);
  }

  /// Prints the stderr exec summary AND records it in the report (the
  /// last recorded section wins in the document).
  void exec(const exec::ExecTelemetry& t);

  BenchArgs args;

 private:
  obs::BenchReport report_;
  std::unique_ptr<obs::TraceRing> trace_;
  std::unique_ptr<obs::TelemetrySink> telemetry_;
  std::chrono::steady_clock::time_point start_;
};

/// One-line execution summary for stderr: resolved jobs, wall time, mean
/// per-run time, pool utilization.
inline void print_exec_summary(const exec::ExecTelemetry& t) {
  std::fprintf(stderr,
               "[exec] jobs=%zu wall=%.2fs runs=%zu mean_run=%.0fms "
               "mean_queue_wait=%.0fms utilization=%.0f%%\n",
               t.jobs, t.wall_seconds, t.task_seconds.count(),
               t.task_seconds.mean() * 1e3,
               t.queue_wait_seconds.mean() * 1e3, t.utilization() * 100.0);
}

inline void BenchSession::exec(const exec::ExecTelemetry& t) {
  print_exec_summary(t);
  report_.set_exec(t.jobs, t.wall_seconds, t.task_seconds.count(),
                   t.task_seconds.mean(), t.queue_wait_seconds.mean(),
                   t.utilization());
}

inline void print_header(const char* title, const char* paper_ref) {
  std::printf("== %s ==\n(reproduces %s; see EXPERIMENTS.md for the "
              "paper-vs-measured record)\n\n",
              title, paper_ref);
}

/// Measured detection point of a protocol: runs Monte-Carlo over a
/// log-spaced checkpoint grid; returns the MC result.
inline runner::MonteCarloResult detection_curve(
    protocols::ProtocolKind kind, std::uint64_t packets, std::size_t runs,
    std::size_t grid_points = 16, std::uint64_t first_checkpoint = 100,
    std::size_t jobs = 0, obs::TraceRing* trace = nullptr,
    const BenchArgs* cli = nullptr, obs::TelemetrySink* telemetry = nullptr) {
  runner::MonteCarloConfig mc;
  mc.base = runner::paper_config(kind, packets, 0);
  mc.base.checkpoints =
      runner::log_checkpoints(first_checkpoint, packets, grid_points);
  mc.runs = runs;
  mc.seed0 = 1000;
  mc.malicious_links = {4};
  mc.sigma = 0.03;
  mc.jobs = jobs;
  mc.trace = trace;
  mc.telemetry = telemetry;
  if (cli != nullptr) cli->apply_adversaries(mc);
  return runner::run_monte_carlo(mc);
}

}  // namespace paai::bench
