// Shared helpers for the bench binaries that regenerate the paper's tables
// and figures. Each binary accepts:
//   --csv          emit CSV instead of aligned columns
//   --runs=N       Monte-Carlo runs (also env PAAI_RUNS); the paper used
//                  10000 — defaults here are sized for a single core, and
//                  the curves are already stable
//   --scale=X      multiply default packet budgets (env PAAI_SCALE)
//   --jobs=N       worker threads for the Monte-Carlo fan-out (also env
//                  PAAI_JOBS); default 0 = hardware concurrency. Results
//                  are bit-identical for any value.
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>

#include "runner/montecarlo.h"
#include "util/csv.h"

namespace paai::bench {

struct BenchArgs {
  bool csv = false;
  long long runs = 0;      // 0 = per-bench default
  double scale = 1.0;
  std::size_t jobs = 0;    // 0 = hardware concurrency

  static BenchArgs parse(int argc, char** argv) {
    BenchArgs args;
    args.csv = has_flag(argc, argv, "--csv");
    args.runs = flag_or_env(argc, argv, "--runs", "PAAI_RUNS", 0);
    args.scale = static_cast<double>(
                     flag_or_env(argc, argv, "--scale", "PAAI_SCALE", 100)) /
                 100.0;
    const long long jobs = flag_or_env(argc, argv, "--jobs", "PAAI_JOBS", 0);
    args.jobs = jobs > 0 ? static_cast<std::size_t>(jobs) : 0;
    return args;
  }

  std::size_t runs_or(std::size_t dflt) const {
    return runs > 0 ? static_cast<std::size_t>(runs) : dflt;
  }

  std::uint64_t scaled(std::uint64_t packets) const {
    return static_cast<std::uint64_t>(static_cast<double>(packets) * scale);
  }
};

/// One-line execution summary for stderr: resolved jobs, wall time, mean
/// per-run time, pool utilization.
inline void print_exec_summary(const exec::ExecTelemetry& t) {
  std::fprintf(stderr,
               "[exec] jobs=%zu wall=%.2fs runs=%zu mean_run=%.0fms "
               "mean_queue_wait=%.0fms utilization=%.0f%%\n",
               t.jobs, t.wall_seconds, t.task_seconds.count(),
               t.task_seconds.mean() * 1e3,
               t.queue_wait_seconds.mean() * 1e3, t.utilization() * 100.0);
}

inline void print_header(const char* title, const char* paper_ref) {
  std::printf("== %s ==\n(reproduces %s; see EXPERIMENTS.md for the "
              "paper-vs-measured record)\n\n",
              title, paper_ref);
}

/// Measured detection point of a protocol: runs Monte-Carlo over a
/// log-spaced checkpoint grid; returns the MC result.
inline runner::MonteCarloResult detection_curve(
    protocols::ProtocolKind kind, std::uint64_t packets, std::size_t runs,
    std::size_t grid_points = 16, std::uint64_t first_checkpoint = 100,
    std::size_t jobs = 0) {
  runner::MonteCarloConfig mc;
  mc.base = runner::paper_config(kind, packets, 0);
  mc.base.checkpoints =
      runner::log_checkpoints(first_checkpoint, packets, grid_points);
  mc.runs = runs;
  mc.seed0 = 1000;
  mc.malicious_links = {4};
  mc.sigma = 0.03;
  mc.jobs = jobs;
  return runner::run_monte_carlo(mc);
}

}  // namespace paai::bench
