// Quickstart: monitor a 6-hop path with PAAI-1 and localize a packet
// dropper.
//
// This walks the full public API surface in ~80 lines:
//   1. build a simulated path (links with natural loss and latency);
//   2. derive per-node keys from a master secret;
//   3. install the PAAI-1 agents (source / relays / destination);
//   4. compromise one node with a dropping strategy;
//   5. run traffic and read the identification verdict off SourceHandle.
//
//   $ ./build/examples/quickstart
#include <cstdio>

#include "adversary/strategy.h"
#include "crypto/keystore.h"
#include "crypto/provider.h"
#include "protocols/factory.h"
#include "sim/network.h"
#include "sim/simulator.h"

using namespace paai;

int main() {
  // 1. The forwarding path: S = F_0, relays F_1..F_5, D = F_6; every link
  //    drops ~1% naturally and adds 0-5 ms latency.
  sim::Simulator simulator;
  sim::PathConfig path;
  path.length = 6;
  path.natural_loss = 0.01;
  path.max_latency_ms = 5.0;
  path.seed = 2026;
  sim::PathNetwork network(simulator, path);

  // 2. Crypto: real SHA-256 / HMAC / ChaCha20, with pairwise keys
  //    K_1..K_d derived from a master secret the source holds.
  const auto crypto = crypto::make_real_crypto();
  const crypto::KeyStore keys(crypto::test_master_key(2026), path.length);

  // 3. Protocol parameters: PAAI-1 samples packets for probing with
  //    p = 1/d^2 and sends 100 data packets per second.
  protocols::ProtocolParams params;
  params.probe_probability = 1.0 / 36.0;
  params.send_rate_pps = 100.0;
  params.total_packets = 60000;
  const protocols::ProtocolContext ctx(*crypto, keys, network, params);

  // 4. Node F_4 is compromised: it drops a fifth of the data packets it
  //    should forward, while answering ack requests as if honest.
  adversary::TypeRates rates;
  rates.data = 0.2;
  const auto strategy = adversary::make_type_rate_dropper(rates, Rng(7));
  std::vector<adversary::Strategy*> compromised(path.length + 1, nullptr);
  compromised[4] = strategy.get();

  protocols::SourceHandle* source = protocols::install_protocol(
      protocols::ProtocolKind::kPaai1, ctx, network, compromised);
  network.start_agents();

  // 5. Run and inspect. The decision threshold sits between the natural
  //    rate (0.01) and the per-link threshold alpha (0.03).
  std::printf("sending %llu packets through F_0 -> ... -> F_6 "
              "(F_4 drops 20%% of data)...\n",
              static_cast<unsigned long long>(params.total_packets));
  simulator.run();

  std::printf("\nsource observed a %.1f%% failure rate over %llu monitored "
              "rounds\n",
              source->observed_e2e_rate() * 100.0,
              static_cast<unsigned long long>(source->observations()));
  std::printf("per-link drop-rate estimates:\n");
  const auto thetas = source->thetas();
  for (std::size_t i = 0; i < thetas.size(); ++i) {
    std::printf("  l_%zu (F_%zu -> F_%zu): %.4f\n", i, i, i + 1, thetas[i]);
  }

  const auto convicted = source->convicted(0.018);
  if (convicted.empty()) {
    std::printf("\nno link convicted — path looks healthy\n");
    return 1;
  }
  for (const std::size_t link : convicted) {
    std::printf("\n=> link l_%zu (between F_%zu and F_%zu) convicted as "
                "malicious — reroute around it\n",
                link, link, link + 1);
  }
  return 0;
}
