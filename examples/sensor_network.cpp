// Scenario: resource-constrained sensor network (the paper's motivating
// setting for the storage metric, §1/§3.1).
//
// A sink collects readings over a 8-hop multihop path of battery-powered
// motes. Control traffic and RAM are scarce: we compare what each
// protocol would cost the motes — control packets per reading, bytes of
// overhead, and peak per-mote packet buffer — and then let PAAI-1 (the
// paper's recommendation) localize a mote that silently sheds 15% of the
// readings it should forward.
//
//   $ ./build/examples/sensor_network
#include <cstdio>
#include <iostream>

#include "runner/experiment.h"
#include "util/csv.h"

using namespace paai;
using namespace paai::runner;

namespace {

struct Cost {
  double ctrl_pkts = 0.0;
  double ctrl_bytes = 0.0;
  double peak_storage = 0.0;
  std::vector<std::size_t> convicted;
};

Cost evaluate(protocols::ProtocolKind kind, std::uint64_t packets) {
  ExperimentConfig cfg;
  cfg.protocol = kind;
  cfg.path.length = 8;           // deeper multihop than the ISP case
  cfg.path.natural_loss = 0.02;  // lossy radio links
  cfg.path.max_latency_ms = 8.0;
  cfg.path.seed = 99;
  cfg.params.send_rate_pps = 20.0;   // one reading per 50 ms
  cfg.params.payload_size = 64;      // small sensor frames
  cfg.params.probe_probability = 1.0 / 16.0;
  cfg.params.total_packets = packets;
  cfg.decision_threshold = 0.045;    // alpha tuned for the lossier links
  cfg.storage_sample_period = sim::milliseconds(25.0);

  AdversarySpec mal;
  mal.node = 5;
  mal.kind = AdversarySpec::Kind::kTypeRates;
  mal.type_rates.data = 0.15;
  cfg.adversaries.push_back(mal);

  const ExperimentResult r = run_experiment(cfg);
  Cost cost;
  cost.ctrl_pkts = r.overhead_packets_ratio;
  cost.ctrl_bytes = r.overhead_bytes_ratio;
  for (const auto& series : r.storage) {
    for (const auto& pt : series.points()) {
      cost.peak_storage = std::max(cost.peak_storage, pt.value);
    }
  }
  cost.convicted = r.final_convicted;
  return cost;
}

}  // namespace

int main() {
  std::printf("sensor sink monitoring an 8-hop mote path "
              "(rho=0.02/link, mote F_5 sheds 15%% of readings)\n\n");

  struct Row {
    protocols::ProtocolKind kind;
    const char* name;
    std::uint64_t packets;
  };
  const Row rows[] = {
      {protocols::ProtocolKind::kFullAck, "full-ack", 20000},
      {protocols::ProtocolKind::kPaai1, "PAAI-1", 60000},
      {protocols::ProtocolKind::kStatisticalFl, "statistical-FL", 60000},
  };

  Table table({"protocol", "ctrl_pkts/reading", "overhead_bytes/byte",
               "peak_mote_buffer_pkts", "verdict"});
  for (const Row& row : rows) {
    const Cost c = evaluate(row.kind, row.packets);
    std::string verdict = c.convicted.empty() ? "no conviction yet" : "";
    for (const auto l : c.convicted) {
      verdict += "l_" + std::to_string(l) + " ";
    }
    table.row()
        .cell(row.name)
        .num(c.ctrl_pkts, 3)
        .num(c.ctrl_bytes, 3)
        .num(c.peak_storage, 0)
        .cell(verdict);
  }
  table.print(std::cout);

  std::printf("\nreading the table: full-ack buys the fastest conviction "
              "but acknowledges every reading — on duty-cycled radios "
              "that is the whole power budget. PAAI-1 keeps control "
              "traffic at ~10%% and still pins the shedding mote's link "
              "exactly. Statistical FL is nearly free, but at this packet "
              "budget its sampled count ratios are still noisy — note the "
              "spurious extra conviction — the Table 2 detection-rate "
              "trade-off, live.\n");
  return 0;
}
