// Attack gallery: every adversary strategy in the library, played against
// PAAI-1 on the reference path. For each attack we report what the source
// concluded and check the protocol's two security promises (§3.1, §4):
//   1. liveness  — an adversary that damages data delivery gets a link
//                  adjacent to it convicted;
//   2. safety    — no link outside the adversary's adjacency is ever
//                  convicted (honest nodes cannot be framed).
//
//   $ ./build/examples/attack_gallery
#include <algorithm>
#include <cstdio>
#include <iostream>

#include "runner/experiment.h"
#include "util/csv.h"

using namespace paai;
using namespace paai::runner;

namespace {

struct Attack {
  const char* name;
  const char* description;
  AdversarySpec spec;
  bool damages_data;  // should it be caught?
};

}  // namespace

int main() {
  const std::size_t z = 3;  // compromised node F_3
  std::vector<Attack> attacks;

  {
    AdversarySpec s;
    s.node = z;
    s.kind = AdversarySpec::Kind::kTypeRates;
    s.type_rates.data = 0.3;
    attacks.push_back({"greedy data dropper",
                       "drops 30% of data, answers probes honestly", s,
                       true});
  }
  {
    AdversarySpec s;
    s.node = z;
    s.kind = AdversarySpec::Kind::kUniform;
    s.rate = 0.3;
    attacks.push_back({"uniform dropper",
                       "drops 30% of everything (Corollary 1 optimum)", s,
                       true});
  }
  {
    AdversarySpec s;
    s.node = z;
    s.kind = AdversarySpec::Kind::kAckOnly;
    s.rate = 1.0;
    attacks.push_back({"ack blackhole",
                       "drops every report/ack to frame honest links", s,
                       false});
  }
  {
    AdversarySpec s;
    s.node = z;
    s.kind = AdversarySpec::Kind::kCorrupt;
    s.rate = 0.3;
    attacks.push_back({"corrupter",
                       "alters packets instead of dropping them", s, true});
  }
  {
    AdversarySpec s;
    s.node = z;
    s.kind = AdversarySpec::Kind::kWithholdRelease;
    s.rate = 0.4;
    attacks.push_back({"withhold-until-probed",
                       "buffers data, releases (stale) when a probe shows "
                       "the packet was monitored",
                       s, true});
  }
  {
    AdversarySpec s;
    s.node = z;
    s.kind = AdversarySpec::Kind::kWithholdDrop;
    s.rate = 0.4;
    attacks.push_back({"withhold-and-drop",
                       "buffers data, drops it unless probed — then drops "
                       "anyway",
                       s, true});
  }

  std::printf("attack gallery — PAAI-1, d=6, natural loss 1%%/link, "
              "compromised node F_%zu\n\n", z);

  Table table({"attack", "convicted", "safety", "liveness"});
  int violations = 0;

  for (const Attack& attack : attacks) {
    ExperimentConfig cfg = paper_config(protocols::ProtocolKind::kPaai1,
                                        40000, 31337);
    cfg.link_faults.clear();
    cfg.params.probe_probability = 1.0 / 9.0;
    cfg.params.send_rate_pps = 500.0;
    cfg.adversaries.push_back(attack.spec);

    const ExperimentResult r = run_experiment(cfg);

    std::string convicted;
    bool safety_ok = true;
    for (const std::size_t link : r.final_convicted) {
      convicted += "l_" + std::to_string(link) + " ";
      if (link != z && link + 1 != z) safety_ok = false;
    }
    const bool caught = !r.final_convicted.empty();
    const bool liveness_ok = !attack.damages_data || caught;
    if (!safety_ok || !liveness_ok) ++violations;

    table.row()
        .cell(attack.name)
        .cell(convicted.empty() ? "-" : convicted)
        .cell(safety_ok ? "ok (adjacent only)" : "VIOLATED")
        .cell(attack.damages_data ? (caught ? "ok (caught)" : "MISSED")
                                  : "n/a (harmless to data)");
  }

  table.print(std::cout);
  std::printf("\n%s\n",
              violations == 0
                  ? "all attacks handled: damaging adversaries localized, "
                    "honest links never framed."
                  : "SECURITY VIOLATION(S) DETECTED — see table.");
  return violations == 0 ? 0 : 1;
}
