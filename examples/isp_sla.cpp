// Scenario: an ISP enforcing a transit SLA (the paper's "monetary loss to
// a service provider" motivation, §1).
//
// Traffic from an edge router crosses six AS-internal hops. One hop starts
// discarding ~3% of traffic — enough to breach a 1%-loss SLA, subtle
// enough to hide inside ordinary congestion. The operator runs PAAI-1,
// watches the per-link evidence accumulate in real time, convicts the
// offending link, reroutes around it ("bypass"), and verifies that the
// end-to-end loss returns to the natural baseline.
//
//   $ ./build/examples/isp_sla
#include <cstdio>
#include <iostream>

#include "runner/experiment.h"
#include "util/csv.h"

using namespace paai;
using namespace paai::runner;

int main() {
  // Phase 1: monitor with the faulty hop active; bypass at packet 60000.
  ExperimentConfig cfg = paper_config(protocols::ProtocolKind::kPaai1,
                                      120000, 424242);
  cfg.params.send_rate_pps = 1000.0;  // a busy edge: 1000 pkt/s
  cfg.bypass_after_packets = 60000;
  // Conviction snapshots every so often — the operator's dashboard.
  for (std::uint64_t n = 5000; n <= 120000; n += 5000) {
    cfg.checkpoints.push_back(n);
  }

  std::printf("ISP path S -> F_1..F_5 -> D, link l_4 dropping ~3%% "
              "(SLA: 1%%)\nmonitoring with PAAI-1 at p=1/36, reroute "
              "scheduled once the operator convicts a link...\n\n");

  const ExperimentResult r = run_experiment(cfg);

  Table table({"packets", "convicted_links", "status"});
  bool convicted_seen = false;
  for (const auto& cp : r.checkpoints) {
    std::string links;
    for (const auto l : cp.convicted) links += "l_" + std::to_string(l) + " ";
    std::string status;
    if (!cp.convicted.empty() && !convicted_seen) {
      status = "<- first conviction; reroute ordered";
      convicted_seen = true;
    } else if (cp.packets >= 60000 && convicted_seen) {
      status = "(rerouted)";
    }
    table.row()
        .integer(static_cast<long long>(cp.packets))
        .cell(links.empty() ? "-" : links)
        .cell(status);
  }
  table.print(std::cout);

  std::printf("\nfinal per-link estimates (post-reroute averages fold in "
              "the clean second half):\n");
  for (std::size_t i = 0; i < r.final_thetas.size(); ++i) {
    std::printf("  l_%zu: %.4f%s\n", i, r.final_thetas[i],
                i == 4 ? "  <- the convicted hop" : "");
  }
  std::printf("\nmonitored-round failure rate over the whole run: %.2f%% "
              "(counts losses on all three legs of a probed round; the "
              "SLA breach was isolated to one link, then cleared)\n",
              r.observed_e2e_rate * 100.0);
  std::printf("communication overhead spent on monitoring: %.2f%% of "
              "bytes\n", r.overhead_bytes_ratio * 100.0);
  return 0;
}
