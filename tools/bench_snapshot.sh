#!/usr/bin/env bash
# Machine-readable benchmark snapshot.
#
# Runs a fast, fixed subset of the bench suite with --metrics-out and
# bundles the per-bench documents into one suite document:
#
#   BENCH_<label>.json = {
#     "schema": "paai.bench.suite.v1",
#     "label": "<label>",
#     "created_unix": <seconds>,
#     "benches": { "<name>": <paai.bench.v1 document>, ... }
#   }
#
# Pure bash + the bench binaries themselves — no jq/python. The per-bench
# documents are emitted by src/obs (BenchReport) and are strict-JSON by
# construction (tests/obs_test.cc round-trips them through the strict
# parser), so embedding them verbatim keeps the suite document valid.
#
# Usage: tools/bench_snapshot.sh [label [build-dir]]
#        (defaults: label=$(git rev-parse --short HEAD), build-dir=build)
set -euo pipefail

cd "$(dirname "$0")/.."
LABEL="${1:-$(git rev-parse --short HEAD 2>/dev/null || echo local)}"
BUILD_DIR="${2:-build}"
OUT="BENCH_${LABEL}.json"
TMP_DIR="$(mktemp -d)"
trap 'rm -rf "$TMP_DIR"' EXIT

if [[ ! -d "$BUILD_DIR/bench" ]]; then
  echo "error: $BUILD_DIR/bench not found — build first (cmake -B $BUILD_DIR -S . && cmake --build $BUILD_DIR -j)" >&2
  exit 1
fi

# name:binary:extra-args — a subset that finishes in a few minutes and
# still covers analytic bounds, a detection curve, the overhead/practicality
# numbers, and the obs hot-path micro costs.
SPECS=(
  "bench_table1:bench_table1:"
  "bench_fig2_fullack:bench_fig2_fullack:--scale=5 --runs=8"
  "bench_ablation:bench_ablation:--scale=10 --runs=6"
  "bench_micro:bench_micro:--benchmark_filter=BM_CounterAdd|BM_HistogramObserve|BM_Sha256|BM_EventQueue"
)

names=()
for spec in "${SPECS[@]}"; do
  name="${spec%%:*}"
  rest="${spec#*:}"
  bin="${rest%%:*}"
  extra="${rest#*:}"
  echo "[snapshot] $name ..."
  # shellcheck disable=SC2086  # $extra is intentionally word-split
  "$BUILD_DIR/bench/$bin" $extra --metrics-out "$TMP_DIR/$name.json" \
      > "$TMP_DIR/$name.stdout" 2> "$TMP_DIR/$name.stderr"
  names+=("$name")
done

{
  printf '{"schema":"paai.bench.suite.v1","label":%s,"created_unix":%s,"benches":{' \
      "\"$LABEL\"" "$(date +%s)"
  first=1
  for name in "${names[@]}"; do
    [[ $first -eq 1 ]] || printf ','
    first=0
    printf '"%s":' "$name"
    cat "$TMP_DIR/$name.json"
  done
  printf '}}\n'
} > "$OUT"

echo "[snapshot] wrote $OUT ($(wc -c < "$OUT") bytes, ${#names[@]} benches)"
