#!/usr/bin/env bash
# Machine-readable benchmark snapshot.
#
# Runs a fast, fixed subset of the bench suite with --metrics-out and
# bundles the per-bench documents into one suite document:
#
#   BENCH_<label>.json = {
#     "schema": "paai.bench.suite.v1",
#     "label": "<label>",
#     "created_unix": <seconds>,
#     "meta": { "cpu_model": "...", "cores": N, "compiler": "...",
#               "created_utc": "<ISO-8601 Z>" },
#     "benches": { "<name>": <paai.bench.v1 document>, ... }
#   }
#
# `meta` records where the numbers came from; tools/bench_diff ignores it
# by default, so snapshots from different hosts still diff on the metrics
# alone.
#
# Pure bash + the bench binaries themselves — no jq/python. The per-bench
# documents are emitted by src/obs (BenchReport) and are strict-JSON by
# construction (tests/obs_test.cc round-trips them through the strict
# parser), so embedding them verbatim keeps the suite document valid.
#
# Usage: tools/bench_snapshot.sh [--full] [label [build-dir]]
#        (defaults: label=$(git rev-parse --short HEAD), build-dir=build)
#
# --full switches from the few-minute smoke subset to the paper-scale
# suite: every bench binary at (or near) its default figure scale. Budget
# hours, not minutes — this is the overnight/release snapshot.
set -euo pipefail

cd "$(dirname "$0")/.."
FULL=0
if [[ "${1:-}" == "--full" ]]; then
  FULL=1
  shift
fi
LABEL="${1:-$(git rev-parse --short HEAD 2>/dev/null || echo local)}"
BUILD_DIR="${2:-build}"
OUT="BENCH_${LABEL}.json"
TMP_DIR="$(mktemp -d)"
trap 'rm -rf "$TMP_DIR"' EXIT

if [[ ! -d "$BUILD_DIR/bench" ]]; then
  echo "error: $BUILD_DIR/bench not found — build first (cmake -B $BUILD_DIR -S . && cmake --build $BUILD_DIR -j)" >&2
  exit 1
fi

# name:binary:extra-args — the default subset finishes in a few minutes
# and still covers analytic bounds, a detection curve, the
# overhead/practicality numbers, and the obs hot-path micro costs.
SPECS=(
  "bench_table1:bench_table1:"
  "bench_fig2_fullack:bench_fig2_fullack:--scale=5 --runs=8"
  "bench_ablation:bench_ablation:--scale=10 --runs=6"
  "bench_micro:bench_micro:--benchmark_filter=BM_CounterAdd|BM_HistogramObserve|BM_EventLogAppend|BM_Sha256|BM_EventQueue"
  "bench_stream:bench_stream:--scale=25 --runs=3"
  "bench_mesh:bench_mesh:--scale=2"
)

# --full: every bench binary at paper scale (figure defaults; run counts
# trimmed only where the paper's 10000-run fleets would take days).
if [[ $FULL -eq 1 ]]; then
  SPECS=(
    "bench_table1:bench_table1:"
    "bench_table2:bench_table2:"
    "bench_theorem1:bench_theorem1:"
    "bench_corollary3:bench_corollary3:"
    "bench_fig2_fullack:bench_fig2_fullack:--runs=100"
    "bench_fig2_paai1:bench_fig2_paai1:--runs=100"
    "bench_fig2_paai2:bench_fig2_paai2:--runs=100"
    "bench_fig3_storage:bench_fig3_storage:"
    "bench_fig3c_positions:bench_fig3c_positions:"
    "bench_combinations:bench_combinations:"
    "bench_ablation:bench_ablation:"
    "bench_asymmetric:bench_asymmetric:"
    "bench_robustness:bench_robustness:"
    "bench_sec9_tradeoff:bench_sec9_tradeoff:"
    "bench_micro:bench_micro:"
    "bench_stream:bench_stream:"
    "bench_mesh:bench_mesh:"
  )
fi

names=()
for spec in "${SPECS[@]}"; do
  name="${spec%%:*}"
  rest="${spec#*:}"
  bin="${rest%%:*}"
  extra="${rest#*:}"
  echo "[snapshot] $name ..."
  # shellcheck disable=SC2086  # $extra is intentionally word-split
  "$BUILD_DIR/bench/$bin" $extra --metrics-out "$TMP_DIR/$name.json" \
      > "$TMP_DIR/$name.stdout" 2> "$TMP_DIR/$name.stderr"
  names+=("$name")
done

# Host metadata for the `meta` object. Values land inside JSON string
# literals, so strip anything that could break them (quotes, backslashes,
# control chars); cores must be a bare number.
json_str() { printf '%s' "$1" | tr -d '"\\' | tr -d '\000-\037'; }
CPU_MODEL="$(awk -F': ' '/^model name/ {print $2; exit}' /proc/cpuinfo \
    2>/dev/null || true)"
[[ -n "$CPU_MODEL" ]] || CPU_MODEL="unknown"
CORES="$(nproc 2>/dev/null || echo 0)"
[[ "$CORES" =~ ^[0-9]+$ ]] || CORES=0
COMPILER="$(c++ --version 2>/dev/null | head -n1 || true)"
[[ -n "$COMPILER" ]] || COMPILER="unknown"
CREATED_UTC="$(date -u +%Y-%m-%dT%H:%M:%SZ)"

{
  printf '{"schema":"paai.bench.suite.v1","label":%s,"created_unix":%s,' \
      "\"$LABEL\"" "$(date +%s)"
  printf '"meta":{"cpu_model":"%s","cores":%s,"compiler":"%s","created_utc":"%s"},"benches":{' \
      "$(json_str "$CPU_MODEL")" "$CORES" "$(json_str "$COMPILER")" \
      "$CREATED_UTC"
  first=1
  for name in "${names[@]}"; do
    [[ $first -eq 1 ]] || printf ','
    first=0
    printf '"%s":' "$name"
    cat "$TMP_DIR/$name.json"
  done
  printf '}}\n'
} > "$OUT"

echo "[snapshot] wrote $OUT ($(wc -c < "$OUT") bytes, ${#names[@]} benches)"
