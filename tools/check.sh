#!/usr/bin/env bash
# Sanitizer checks, two legs:
#
#   1. ThreadSanitizer — exec + runner + fleet + obs test suites. Catches
#      data races in the parallel execution engine (src/exec), in anything
#      run_experiment touches, and in the lock-free metrics/tracer shards
#      (src/obs) that runs write concurrently. The other half of the
#      determinism story (the jobs=1 vs jobs=8 bit-identity test in
#      exec_test) runs in the normal config via ctest.
#
#   2. AddressSanitizer + UBSan (hard-fail, -fno-sanitize-recover=all) —
#      the memory-facing suites: obs (JSON parser on hostile input, ring
#      indexing), util (wire codec fuzz loop), sim, exec.
#
# Usage: tools/check.sh [tsan-build-dir [asan-build-dir]]
#        (defaults: build-tsan build-asan)
set -euo pipefail

cd "$(dirname "$0")/.."
TSAN_DIR="${1:-build-tsan}"
ASAN_DIR="${2:-build-asan}"

echo "== leg 1: ThreadSanitizer =="
cmake -B "$TSAN_DIR" -S . -DPAAI_SANITIZE=thread -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "$TSAN_DIR" --target exec_test runner_test fleet_test obs_test -j "$(nproc)"

# TSAN_OPTIONS makes races hard failures rather than log noise.
export TSAN_OPTIONS="halt_on_error=1 ${TSAN_OPTIONS:-}"
"$TSAN_DIR/tests/exec_test"
"$TSAN_DIR/tests/runner_test"
"$TSAN_DIR/tests/fleet_test"
"$TSAN_DIR/tests/obs_test"

echo "== leg 2: AddressSanitizer + UBSan =="
cmake -B "$ASAN_DIR" -S . -DPAAI_SANITIZE=address -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "$ASAN_DIR" --target obs_test util_test sim_test exec_test -j "$(nproc)"

export ASAN_OPTIONS="halt_on_error=1 detect_leaks=1 ${ASAN_OPTIONS:-}"
export UBSAN_OPTIONS="halt_on_error=1 print_stacktrace=1 ${UBSAN_OPTIONS:-}"
"$ASAN_DIR/tests/obs_test"
"$ASAN_DIR/tests/util_test"
"$ASAN_DIR/tests/sim_test"
"$ASAN_DIR/tests/exec_test"

echo "check.sh: TSan (exec/runner/fleet/obs) and ASan+UBSan (obs/util/sim/exec) clean"
