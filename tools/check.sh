#!/usr/bin/env bash
# Concurrency check: build the ThreadSanitizer configuration and run the
# exec + runner test suites under it. Catches data races in the parallel
# execution engine (src/exec) and in anything run_experiment touches —
# the other half of the determinism story (the jobs=1 vs jobs=8
# bit-identity test in exec_test) runs in the normal config via ctest.
#
# Usage: tools/check.sh [build-dir]    (default: build-tsan)
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build-tsan}"

cmake -B "$BUILD_DIR" -S . -DPAAI_SANITIZE=thread -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "$BUILD_DIR" --target exec_test runner_test fleet_test -j "$(nproc)"

# TSAN_OPTIONS makes races hard failures rather than log noise.
export TSAN_OPTIONS="halt_on_error=1 ${TSAN_OPTIONS:-}"
"$BUILD_DIR/tests/exec_test"
"$BUILD_DIR/tests/runner_test"
"$BUILD_DIR/tests/fleet_test"

echo "check.sh: exec + runner + fleet tests clean under TSan"
