#!/usr/bin/env bash
# Sanitizer checks, two legs, plus the bench_diff self-check:
#
#   1. ThreadSanitizer — exec + runner + fleet + obs + faults test suites.
#      Catches data races in the parallel execution engine (src/exec), in
#      anything run_experiment touches, and in the lock-free metrics/tracer
#      shards (src/obs) that runs write concurrently. faults_test runs the
#      injector's schedule machinery and crash hooks under the Monte-Carlo
#      fan-out (BitIdenticalAcrossJobs). The other half of the determinism
#      story (the jobs=1 vs jobs=8 bit-identity test in exec_test) runs in
#      the normal config via ctest.
#
#   2. AddressSanitizer + UBSan (hard-fail, -fno-sanitize-recover=all) —
#      the memory-facing suites: obs (JSON parser on hostile input, ring
#      indexing), util (wire codec fuzz loop), sim, exec, faults (plan
#      parser on malformed specs, loss-process state machines, crash-time
#      pending-table teardown).
#
#   The 60k-packet ChaosPaperScale sweep is excluded under sanitizers for
#   runtime; ChaosSmoke is its in-sanitizer representative.
#
#   3. bench_diff — self-test fixtures, then a same-file diff against the
#      committed snapshot (must report zero drift against itself).
#
# Usage: tools/check.sh [tsan-build-dir [asan-build-dir]]
#        (defaults: build-tsan build-asan)
set -euo pipefail

cd "$(dirname "$0")/.."
TSAN_DIR="${1:-build-tsan}"
ASAN_DIR="${2:-build-asan}"
CHAOS_FILTER="--gtest_filter=-*ChaosPaperScale*"

echo "== leg 1: ThreadSanitizer =="
cmake -B "$TSAN_DIR" -S . -DPAAI_SANITIZE=thread -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "$TSAN_DIR" --target exec_test runner_test fleet_test obs_test faults_test -j "$(nproc)"

# TSAN_OPTIONS makes races hard failures rather than log noise.
export TSAN_OPTIONS="halt_on_error=1 ${TSAN_OPTIONS:-}"
"$TSAN_DIR/tests/exec_test"
"$TSAN_DIR/tests/runner_test"
"$TSAN_DIR/tests/fleet_test"
"$TSAN_DIR/tests/obs_test"
"$TSAN_DIR/tests/faults_test" "$CHAOS_FILTER"

echo "== leg 2: AddressSanitizer + UBSan =="
cmake -B "$ASAN_DIR" -S . -DPAAI_SANITIZE=address -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "$ASAN_DIR" --target obs_test util_test sim_test exec_test faults_test bench_diff -j "$(nproc)"

export ASAN_OPTIONS="halt_on_error=1 detect_leaks=1 ${ASAN_OPTIONS:-}"
export UBSAN_OPTIONS="halt_on_error=1 print_stacktrace=1 ${UBSAN_OPTIONS:-}"
"$ASAN_DIR/tests/obs_test"
"$ASAN_DIR/tests/util_test"
"$ASAN_DIR/tests/sim_test"
"$ASAN_DIR/tests/exec_test"
"$ASAN_DIR/tests/faults_test" "$CHAOS_FILTER"

echo "== leg 3: bench_diff =="
"$ASAN_DIR/tools/bench_diff" --self-test
# A snapshot diffed against itself must be drift-free.
"$ASAN_DIR/tools/bench_diff" BENCH_pr3.json BENCH_pr3.json

echo "check.sh: TSan (exec/runner/fleet/obs/faults), ASan+UBSan (obs/util/sim/exec/faults), bench_diff clean"
