#!/usr/bin/env bash
# Sanitizer checks, two legs, plus the bench_diff self-check:
#
#   1. ThreadSanitizer — exec + runner + fleet + mesh + obs + faults +
#      telemetry test suites. Catches data races in the parallel execution
#      engine (src/exec), in anything run_experiment touches, in the mesh
#      runner's sharded score accumulation (src/mesh), in the
#      lock-free metrics/tracer
#      shards (src/obs) that runs write concurrently, and in the telemetry
#      sampler racing registry/profiler writers
#      (Concurrency.SamplerRacesProducers). faults_test runs the
#      injector's schedule machinery and crash hooks under the Monte-Carlo
#      fan-out (BitIdenticalAcrossJobs). The other half of the determinism
#      story (the jobs=1 vs jobs=8 bit-identity test in exec_test) runs in
#      the normal config via ctest.
#
#   2. AddressSanitizer + UBSan (hard-fail, -fno-sanitize-recover=all) —
#      the memory-facing suites: obs (JSON parser on hostile input, ring
#      indexing), util (wire codec fuzz loop), sim, exec, faults (plan
#      parser on malformed specs, loss-process state machines, crash-time
#      pending-table teardown).
#
#   The 60k-packet ChaosPaperScale sweep is excluded under sanitizers for
#   runtime; ChaosSmoke is its in-sanitizer representative.
#
#   3. bench_diff — self-test fixtures, then a same-file diff against the
#      committed snapshot (must report zero drift against itself).
#
#   4. forensics smoke — a small PAAI-1 run (adversary at l_3) with
#      --events-out, replayed through `paai explain`; the audit trail must
#      name the planted link, and the emitted paai.bench.v1 report must
#      diff cleanly against itself.
#
#   5. colluder forensics smoke — a full-ack run against the adaptive
#      fault colluder (collude@4:rate=1 hiding inside the calibrated
#      Gilbert-Elliott burst plan on honest l_2); `paai explain` must
#      convict the true adversarial link l_4 and must NOT name the bursty
#      honest l_2. Full-ack is the leg's protocol because its per-hop acks
#      localise in-window drops; PAAI-1's blame-to-first-failing-hop
#      heuristic measurably under-attributes here (bench_robustness C).
#
#   6. serve-mode smoke — stream engine replay + snapshot/restore.
#
#   7. mesh smoke — a compromised fat-tree core straddling ~100 paths per
#      out-link; the aggregated cross-path score store (paai mesh) must
#      convict exactly the core's out-links with witness provenance and
#      exonerate every honest link.
#
#   8. detector smoke — the multi-level blame modes (docs/DETECTORS.md):
#      the fault-colluding adversary (collude@4:rate=1 under the
#      calibrated GE burst cover) must be CONVICTED by PAAI-1 under
#      --blame=hybrid at the paper's 60k-packet horizon, and the same
#      hybrid detector must convict nobody on an honest path under every
#      shipped benign fault plan — the windowed clauses must not reopen
#      the Theorem 2 false-accusation door.
#
#   9. telemetry smoke — `paai serve` with --telemetry-out over the leg-6
#      reference stream must emit >= 2 paai.telemetry.v1 lines that the
#      strict consumer (tools/telemetry_report) validates with zero parse
#      errors and monotone sample indices, including nonzero
#      back-pressure gauges; `paai top --once` must render the file;
#      `replay --verify` must stay bit-identical with telemetry +
#      profiling enabled; and a sig-ack run's profile must attribute
#      nonzero time to the crypto phase.
#
# Usage: tools/check.sh [tsan-build-dir [asan-build-dir]]
#        (defaults: build-tsan build-asan)
set -euo pipefail

cd "$(dirname "$0")/.."
TSAN_DIR="${1:-build-tsan}"
ASAN_DIR="${2:-build-asan}"
CHAOS_FILTER="--gtest_filter=-*ChaosPaperScale*"

echo "== leg 1: ThreadSanitizer =="
cmake -B "$TSAN_DIR" -S . -DPAAI_SANITIZE=thread -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "$TSAN_DIR" --target exec_test runner_test fleet_test mesh_test obs_test faults_test telemetry_test -j "$(nproc)"

# TSAN_OPTIONS makes races hard failures rather than log noise.
export TSAN_OPTIONS="halt_on_error=1 ${TSAN_OPTIONS:-}"
"$TSAN_DIR/tests/exec_test"
"$TSAN_DIR/tests/runner_test"
"$TSAN_DIR/tests/fleet_test"
"$TSAN_DIR/tests/mesh_test"
"$TSAN_DIR/tests/obs_test"
"$TSAN_DIR/tests/faults_test" "$CHAOS_FILTER"
# The Integration.* bit-identity sweeps (14 full runs) are excluded here
# for runtime, like ChaosPaperScale; they run in the normal ctest config.
# The race-facing tests (sampler vs. registry/profiler writers, serve
# lag) are what TSan is for.
"$TSAN_DIR/tests/telemetry_test" "--gtest_filter=-Integration.*"

echo "== leg 2: AddressSanitizer + UBSan =="
cmake -B "$ASAN_DIR" -S . -DPAAI_SANITIZE=address -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "$ASAN_DIR" --target obs_test util_test sim_test exec_test faults_test bench_diff -j "$(nproc)"

export ASAN_OPTIONS="halt_on_error=1 detect_leaks=1 ${ASAN_OPTIONS:-}"
export UBSAN_OPTIONS="halt_on_error=1 print_stacktrace=1 ${UBSAN_OPTIONS:-}"
"$ASAN_DIR/tests/obs_test"
"$ASAN_DIR/tests/util_test"
"$ASAN_DIR/tests/sim_test"
"$ASAN_DIR/tests/exec_test"
"$ASAN_DIR/tests/faults_test" "$CHAOS_FILTER"

echo "== leg 3: bench_diff =="
"$ASAN_DIR/tools/bench_diff" --self-test
# A snapshot diffed against itself must be drift-free.
"$ASAN_DIR/tools/bench_diff" BENCH_pr3.json BENCH_pr3.json
# Cross-snapshot regression gate: the protocol metrics shared by the pr3
# and pr6 snapshots must agree; bench_micro is ignored because its
# wall-clock timings measure the machine the snapshot ran on.
"$ASAN_DIR/tools/bench_diff" --ignore=bench_micro \
    BENCH_pr3.json BENCH_pr6.json
# pr6 -> pr7 adds the bench_stream section; its throughput/latency numbers
# measure the machine (like bench_micro), so both are ignored.
"$ASAN_DIR/tools/bench_diff" --ignore=bench_micro --ignore=bench_stream \
    BENCH_pr6.json BENCH_pr7.json
# pr7 -> pr8 adds the bench_mesh section (one-sided benches diff as
# notes); bench_mesh's paths/s throughput measures the machine, so it
# joins the ignore list alongside the other timing benches.
"$ASAN_DIR/tools/bench_diff" --ignore=bench_micro --ignore=bench_stream \
    --ignore=bench_mesh BENCH_pr7.json BENCH_pr8.json
# pr8 -> pr9 adds the windowed/hybrid frontier rows to bench_robustness;
# the shared protocol metrics must not drift.
"$ASAN_DIR/tools/bench_diff" --ignore=bench_micro --ignore=bench_stream \
    --ignore=bench_mesh BENCH_pr8.json BENCH_pr9.json
"$ASAN_DIR/tools/bench_diff" BENCH_pr9.json BENCH_pr9.json

echo "== leg 4: forensics smoke (paai run --events-out -> paai explain) =="
cmake --build "$ASAN_DIR" --target paai -j "$(nproc)"
SMOKE_DIR="$(mktemp -d)"
trap 'rm -rf "$SMOKE_DIR"' EXIT
"$ASAN_DIR/tools/paai" run --protocol=paai1 --packets=20000 --seed=1 \
    --fault=3:0.02 --events-out="$SMOKE_DIR/events.jsonl" \
    --events-cap=65536 --metrics-out="$SMOKE_DIR/run.json" \
    > "$SMOKE_DIR/run.stdout"
"$ASAN_DIR/tools/paai" explain "$SMOKE_DIR/events.jsonl" \
    > "$SMOKE_DIR/explain.stdout"
grep -q "CONVICTED l_3" "$SMOKE_DIR/explain.stdout" || {
  echo "leg 4 FAILED: audit trail did not convict l_3:" >&2
  cat "$SMOKE_DIR/explain.stdout" >&2
  exit 1
}
# The run's verdict table and the replayed audit trail must agree.
grep -q "CONVICTED" "$SMOKE_DIR/run.stdout" || {
  echo "leg 4 FAILED: run verdict table has no conviction" >&2
  exit 1
}
# The emitted paai.bench.v1 report must be valid (self-diff is clean).
"$ASAN_DIR/tools/bench_diff" "$SMOKE_DIR/run.json" "$SMOKE_DIR/run.json"

echo "== leg 5: colluder forensics smoke (fault-colluding adversary) =="
"$ASAN_DIR/tools/paai" run --protocol=fullack --packets=20000 --seed=1 \
    --adversary='collude@4:rate=1' \
    --faults='ge@2:pg=0.005,pb=0.3,g2b=0.003,b2g=0.15' \
    --events-out="$SMOKE_DIR/collude.jsonl" --events-cap=65536 \
    > "$SMOKE_DIR/collude.stdout"
"$ASAN_DIR/tools/paai" explain "$SMOKE_DIR/collude.jsonl" \
    > "$SMOKE_DIR/collude_explain.stdout"
grep -q "CONVICTED l_4" "$SMOKE_DIR/collude_explain.stdout" || {
  echo "leg 5 FAILED: colluder's true link l_4 not convicted:" >&2
  cat "$SMOKE_DIR/collude_explain.stdout" >&2
  exit 1
}
if grep -q "CONVICTED l_2" "$SMOKE_DIR/collude_explain.stdout"; then
  echo "leg 5 FAILED: bursty honest l_2 falsely convicted:" >&2
  cat "$SMOKE_DIR/collude_explain.stdout" >&2
  exit 1
fi

echo "== leg 6: serve-mode smoke (stream engine replay + snapshot/restore) =="
# A batch run's event stream replayed through the online engine must
# reproduce the batch verdict bit-identically (`replay --verify` diffs the
# engine's conviction set, thetas, and observation counts against the
# stream's own kConviction records), including when the stream is cut in
# half and the engine round-trips through a paai.state.v1 snapshot.
"$ASAN_DIR/tools/paai" run --protocol=paai1 --packets=8000 --seed=1 \
    --fault=4:0.02 --events-out="$SMOKE_DIR/stream.jsonl" \
    --events-cap=200000 > "$SMOKE_DIR/stream_run.stdout"
"$ASAN_DIR/tools/paai" replay "$SMOKE_DIR/stream.jsonl" --verify \
    > "$SMOKE_DIR/replay.stdout" || {
  echo "leg 6 FAILED: replay --verify diverged from the batch run:" >&2
  cat "$SMOKE_DIR/replay.stdout" >&2
  exit 1
}
# Snapshot mid-stream, restore, and finish: same verdict.
split -l 6000 "$SMOKE_DIR/stream.jsonl" "$SMOKE_DIR/stream_part."
"$ASAN_DIR/tools/paai" serve --in="$SMOKE_DIR/stream_part.aa" \
    --state-out="$SMOKE_DIR/state.json" > "$SMOKE_DIR/serve.stdout"
cat "$SMOKE_DIR/stream_part."a[b-z] > "$SMOKE_DIR/stream_rest.jsonl"
"$ASAN_DIR/tools/paai" replay "$SMOKE_DIR/stream_rest.jsonl" \
    --state-in="$SMOKE_DIR/state.json" --verify \
    > "$SMOKE_DIR/replay_resumed.stdout" || {
  echo "leg 6 FAILED: snapshot/restore replay diverged:" >&2
  cat "$SMOKE_DIR/replay_resumed.stdout" >&2
  exit 1
}
grep -q "verify: OK" "$SMOKE_DIR/replay_resumed.stdout" || {
  echo "leg 6 FAILED: resumed replay did not report verify: OK" >&2
  exit 1
}

echo "== leg 7: mesh smoke (fat-tree colluder convicted from cross-path evidence) =="
# A compromised core switch (node 0) straddles ~100 paths per out-link on
# a k=4 fat-tree; the aggregated score store must convict exactly its
# out-links — [malicious] lines with witness-path provenance — and never
# an honest link. Exit status enforces zero missed / zero false. The TSan
# leg above already runs mesh_test (sharded store + jobs bit-identity).
"$ASAN_DIR/tools/paai" mesh --topo=fattree@4 --paths=2000 --units=1500 \
    --adversary='uniform@0:rate=0.05' --threshold=0.02 --seed=9000 \
    --metrics-out="$SMOKE_DIR/mesh.json" > "$SMOKE_DIR/mesh.stdout" || {
  echo "leg 7 FAILED: paai mesh exited nonzero (missed or false conviction):" >&2
  cat "$SMOKE_DIR/mesh.stdout" >&2
  exit 1
}
grep -q 'CONVICTED l_.* \[malicious\]' "$SMOKE_DIR/mesh.stdout" || {
  echo "leg 7 FAILED: no malicious link convicted:" >&2
  cat "$SMOKE_DIR/mesh.stdout" >&2
  exit 1
}
if grep -q '\[HONEST\]' "$SMOKE_DIR/mesh.stdout"; then
  echo "leg 7 FAILED: honest link falsely convicted:" >&2
  cat "$SMOKE_DIR/mesh.stdout" >&2
  exit 1
fi
grep -q 'witnesses=p' "$SMOKE_DIR/mesh.stdout" || {
  echo "leg 7 FAILED: conviction lines carry no witness provenance" >&2
  exit 1
}
# The emitted paai.bench.v1 report must be valid (self-diff is clean).
"$ASAN_DIR/tools/bench_diff" "$SMOKE_DIR/mesh.json" "$SMOKE_DIR/mesh.json"

echo "== leg 8: detector smoke (multi-level blame modes) =="
# The hybrid detector's target scenario: the r=1 fault colluder hiding in
# the calibrated GE burst plan evades the margin rule at the paper's 60k
# packets (theta_4 ~ 0.015-0.017, sd margin not cleared) but keeps a
# >= 4-window hot streak the honest churn cannot — hybrid must convict.
"$ASAN_DIR/tools/paai" run --protocol=paai1 --packets=60000 --seed=900 \
    --blame=hybrid --adversary='collude@4:rate=1' \
    --faults='ge@2:pg=0.005,pb=0.3,g2b=0.003,b2g=0.15' \
    > "$SMOKE_DIR/hybrid.stdout"
grep -q "CONVICTED" "$SMOKE_DIR/hybrid.stdout" || {
  echo "leg 8 FAILED: hybrid blame mode did not convict the colluder:" >&2
  cat "$SMOKE_DIR/hybrid.stdout" >&2
  exit 1
}
grep "CONVICTED" "$SMOKE_DIR/hybrid.stdout" | grep -q "l_4" || {
  echo "leg 8 FAILED: hybrid conviction names the wrong link:" >&2
  cat "$SMOKE_DIR/hybrid.stdout" >&2
  exit 1
}
# The other side of the bargain: on an honest path, hybrid's extra
# clauses must convict nobody under ANY shipped benign fault plan
# (specs mirror faults::benign_plans() — bench_robustness section A runs
# the same sweep across all protocols and blame-free configs).
BENIGN_PLANS=(
  'ge@2:pg=0.005,pb=0.3,g2b=0.003,b2g=0.15'
  'set@1:t=0,loss=0.002;set@1:t=150,loss=0.02;set@1:t=300,loss=0.002;set@1:t=450,loss=0.02;set@1:t=550,loss=0.002'
  'set@3:t=60,lat=4.5,jitter=0.5;set@3:t=240,lat=1;set@3:t=420,lat=4.8,jitter=1'
  'outage@3:t=120,dur=1.5;outage@2:t=360,dur=1'
  'reorder@1:p=0.05,delay=2;dup@4:p=0.01'
  'ge@2:pg=0.004,pb=0.2,g2b=0.002,b2g=0.2;set@1:t=100,loss=0.015;set@1:t=250,loss=0.002;outage@4:t=180,dur=1;reorder@5:p=0.02,delay=1;dup@0:p=0.005'
)
for plan in "${BENIGN_PLANS[@]}"; do
  # `paai run` exits 1 when nobody is convicted — the *expected* outcome
  # here; 0 means a conviction and >= 2 means the run itself errored.
  rc=0
  "$ASAN_DIR/tools/paai" run --protocol=paai1 --packets=60000 --seed=900 \
      --blame=hybrid --faults="$plan" > "$SMOKE_DIR/benign.stdout" || rc=$?
  if [[ $rc -ne 1 ]] || grep -q "CONVICTED" "$SMOKE_DIR/benign.stdout"; then
    echo "leg 8 FAILED: hybrid falsely convicted (or errored, rc=$rc)" \
         "under benign plan '$plan':" >&2
    cat "$SMOKE_DIR/benign.stdout" >&2
    exit 1
  fi
done

echo "== leg 9: telemetry smoke (live paai.telemetry.v1 plane) =="
cmake --build "$ASAN_DIR" --target telemetry_report -j "$(nproc)"
# Serve the leg-6 reference stream with telemetry on. telemetry_report IS
# the strict parser: exit 2 on any malformed line or non-monotone sample
# index, so schema validity and monotonicity ride on its exit status.
"$ASAN_DIR/tools/paai" serve --in="$SMOKE_DIR/stream.jsonl" \
    --telemetry-out="$SMOKE_DIR/serve_tele.jsonl" --telemetry-every=2000 \
    > "$SMOKE_DIR/serve_tele.stdout" 2> "$SMOKE_DIR/serve_tele.stderr"
[[ "$(wc -l < "$SMOKE_DIR/serve_tele.jsonl")" -ge 2 ]] || {
  echo "leg 9 FAILED: serve emitted fewer than 2 telemetry lines" >&2
  cat "$SMOKE_DIR/serve_tele.jsonl" >&2
  exit 1
}
"$ASAN_DIR/tools/telemetry_report" "$SMOKE_DIR/serve_tele.jsonl" \
    > "$SMOKE_DIR/serve_tele.report" || {
  echo "leg 9 FAILED: telemetry_report rejected the serve stream:" >&2
  cat "$SMOKE_DIR/serve_tele.report" >&2
  exit 1
}
grep -q 'gauge stream\.serve\.lag_events .*peak=[1-9]' \
    "$SMOKE_DIR/serve_tele.report" || {
  echo "leg 9 FAILED: serve telemetry has no nonzero lag gauge:" >&2
  cat "$SMOKE_DIR/serve_tele.report" >&2
  exit 1
}
grep -q 'gauge stream\.serve\.backlog_bytes .*peak=[1-9]' \
    "$SMOKE_DIR/serve_tele.report" || {
  echo "leg 9 FAILED: serve telemetry has no nonzero backlog gauge:" >&2
  cat "$SMOKE_DIR/serve_tele.report" >&2
  exit 1
}
# The exit summary (satellite of the same PR) prints throughput and peak
# lag on stderr even when telemetry is off; with it on, same line.
grep -q 'events/s applied' "$SMOKE_DIR/serve_tele.stderr" || {
  echo "leg 9 FAILED: serve exit summary missing throughput line:" >&2
  cat "$SMOKE_DIR/serve_tele.stderr" >&2
  exit 1
}
# The live dashboard must render the file in --once mode.
"$ASAN_DIR/tools/paai" top "$SMOKE_DIR/serve_tele.jsonl" --once \
    > "$SMOKE_DIR/top.stdout"
grep -q 'paai top' "$SMOKE_DIR/top.stdout" || {
  echo "leg 9 FAILED: paai top --once rendered nothing" >&2
  exit 1
}
# Telemetry + profiling must stay strictly observational: the replayed
# verdict is still bit-identical to the batch run.
"$ASAN_DIR/tools/paai" replay "$SMOKE_DIR/stream.jsonl" --verify \
    --telemetry-out="$SMOKE_DIR/replay_tele.jsonl" --telemetry-every=2000 \
    > "$SMOKE_DIR/replay_tele.stdout" || {
  echo "leg 9 FAILED: replay --verify diverged with telemetry enabled:" >&2
  cat "$SMOKE_DIR/replay_tele.stdout" >&2
  exit 1
}
grep -q "verify: OK" "$SMOKE_DIR/replay_tele.stdout" || {
  echo "leg 9 FAILED: telemetry-enabled replay did not report verify: OK" >&2
  exit 1
}
# A sig-ack run's self-profile must attribute nonzero time to the crypto
# phase (rc 1 = no conviction, acceptable for this packet budget).
rc=0
"$ASAN_DIR/tools/paai" run --protocol=sigack --packets=2000 --seed=1 \
    --fault=4:0.02 --telemetry-out="$SMOKE_DIR/sigack_tele.jsonl" \
    --telemetry-every=500 > "$SMOKE_DIR/sigack_tele.stdout" || rc=$?
[[ $rc -le 1 ]] || {
  echo "leg 9 FAILED: sig-ack telemetry run errored (rc=$rc)" >&2
  exit 1
}
"$ASAN_DIR/tools/telemetry_report" "$SMOKE_DIR/sigack_tele.jsonl" \
    > "$SMOKE_DIR/sigack_tele.report"
grep -q 'phase crypto calls=[1-9]' "$SMOKE_DIR/sigack_tele.report" || {
  echo "leg 9 FAILED: sig-ack profile shows no crypto phase:" >&2
  cat "$SMOKE_DIR/sigack_tele.report" >&2
  exit 1
}

echo "check.sh: TSan (exec/runner/fleet/mesh/obs/faults/telemetry), ASan+UBSan (obs/util/sim/exec/faults), bench_diff clean, forensics smoke clean, colluder forensics clean, serve smoke clean, mesh smoke clean, detector smoke clean, telemetry smoke clean"
