// bench_diff — compare two machine-readable bench documents.
//
//   bench_diff [options] BASELINE.json CANDIDATE.json
//   bench_diff --self-test
//
// Accepts either the suite document written by tools/bench_snapshot.sh
// ("paai.bench.suite.v1") or a single bench document ("paai.bench.v1",
// from any binary's --metrics-out). For every bench present in both
// files, every metric under "results" is compared; a relative change
// beyond the threshold is a drift. Wall time, exec telemetry, and the
// observability section are deliberately ignored — they measure the
// machine, not the protocols. The suite-level "meta" object
// (host/compiler/timestamp stamped by bench_snapshot.sh) is ignored for
// the same reason: only "schema" and "benches"/"results" are read, so
// snapshots taken on different machines diff on the metrics alone.
//
// Options:
//   --threshold=PCT   relative-change tolerance in percent (default 10)
//   --ignore=BENCH    drop the named bench from both sides before
//                     comparing (repeatable); for benches whose metrics
//                     measure the machine rather than the protocols,
//                     e.g. bench_micro wall-clock timings
//   --csv             machine-readable drift listing
//   --self-test       run the built-in pass/fail fixtures and exit
//
// Exit status: 0 = no drift, 1 = drift detected, 2 = usage / parse error.
// Metrics or benches present on only one side are reported as notes but
// are not drift by themselves — suites legitimately grow.
#include <cmath>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "obs/json.h"
#include "util/csv.h"

using paai::obs::JsonValue;

namespace {

struct DiffStats {
  std::size_t compared = 0;
  std::size_t drifted = 0;
  std::vector<std::string> notes;
};

/// Flattens a document into (bench, metric) -> value. A single
/// paai.bench.v1 document becomes a one-bench suite keyed by its "bench"
/// name, so a suite can be diffed against a lone --metrics-out file.
using MetricMap = std::vector<std::pair<std::string, double>>;

std::optional<MetricMap> flatten(const JsonValue& doc, std::string* error) {
  const JsonValue* schema = doc.find("schema");
  if (schema == nullptr || !schema->is_string()) {
    *error = "missing \"schema\" member";
    return std::nullopt;
  }
  MetricMap out;
  const auto add_bench = [&out](const std::string& bench,
                                const JsonValue& bench_doc) {
    const JsonValue* results = bench_doc.find("results");
    if (results == nullptr || !results->is_object()) return;
    for (const auto& [metric, value] : results->object) {
      if (value.is_number()) {
        out.emplace_back(bench + "/" + metric, value.number);
      }
    }
  };
  if (schema->string == "paai.bench.suite.v1") {
    const JsonValue* benches = doc.find("benches");
    if (benches == nullptr || !benches->is_object()) {
      *error = "suite document without \"benches\" object";
      return std::nullopt;
    }
    for (const auto& [name, bench_doc] : benches->object) {
      add_bench(name, bench_doc);
    }
  } else if (schema->string == "paai.bench.v1") {
    const JsonValue* name = doc.find("bench");
    add_bench(name != nullptr && name->is_string() ? name->string : "bench",
              doc);
  } else {
    *error = "unknown schema \"" + schema->string + "\"";
    return std::nullopt;
  }
  return out;
}

/// Drops every metric belonging to an ignored bench (flattened keys are
/// "bench/metric", so an ignore matches the prefix up to the first '/').
void drop_ignored(MetricMap& m, const std::vector<std::string>& ignores) {
  std::erase_if(m, [&ignores](const std::pair<std::string, double>& kv) {
    const std::string bench = kv.first.substr(0, kv.first.find('/'));
    for (const auto& ignore : ignores) {
      if (bench == ignore) return true;
    }
    return false;
  });
}

const double* find_metric(const MetricMap& m, const std::string& key) {
  for (const auto& [k, v] : m) {
    if (k == key) return &v;
  }
  return nullptr;
}

DiffStats diff(const MetricMap& base, const MetricMap& cand,
               double threshold, paai::Table& table) {
  DiffStats stats;
  for (const auto& [key, a] : base) {
    const double* b = find_metric(cand, key);
    if (b == nullptr) {
      stats.notes.push_back("only in baseline: " + key);
      continue;
    }
    ++stats.compared;
    // Relative change against the baseline magnitude; a metric appearing
    // from exactly zero is always a drift (no scale to compare against).
    const double rel = a != 0.0 ? (*b - a) / std::fabs(a)
                                : (*b != 0.0 ? INFINITY : 0.0);
    if (std::fabs(rel) > threshold) {
      ++stats.drifted;
      table.row()
          .cell(key)
          .num(a, 6)
          .num(*b, 6)
          .cell(std::isfinite(rel)
                    ? paai::fmt_num(rel * 100.0, 2) + "%"
                    : "new-nonzero");
    }
  }
  for (const auto& [key, b] : cand) {
    (void)b;
    if (find_metric(base, key) == nullptr) {
      stats.notes.push_back("only in candidate: " + key);
    }
  }
  return stats;
}

std::optional<MetricMap> load(const std::string& path, std::string* error) {
  std::ifstream is(path);
  if (!is) {
    *error = "cannot open " + path;
    return std::nullopt;
  }
  std::ostringstream buf;
  buf << is.rdbuf();
  std::string parse_error;
  const auto doc = paai::obs::json_parse(buf.str(), &parse_error);
  if (!doc) {
    *error = path + ": " + parse_error;
    return std::nullopt;
  }
  auto flat = flatten(*doc, error);
  if (!flat) *error = path + ": " + *error;
  return flat;
}

/// Built-in fixtures: the same document must diff clean against itself,
/// and a moved metric must be flagged. Keeps check.sh honest without
/// needing fixture files in the tree.
int self_test() {
  const char* base_doc = R"({"schema":"paai.bench.v1","bench":"t",
    "results":{"detection_packets":1000,"overhead":0.25,"zero":0}})";
  const char* drift_doc = R"({"schema":"paai.bench.v1","bench":"t",
    "results":{"detection_packets":1500,"overhead":0.25,"zero":0}})";
  std::string error;
  const auto a = paai::obs::json_parse(base_doc, &error);
  const auto b = paai::obs::json_parse(drift_doc, &error);
  if (!a || !b) {
    std::fprintf(stderr, "self-test: fixture parse failed: %s\n",
                 error.c_str());
    return 2;
  }
  const auto fa = flatten(*a, &error);
  const auto fb = flatten(*b, &error);
  if (!fa || !fb || fa->size() != 3) {
    std::fprintf(stderr, "self-test: flatten failed: %s\n", error.c_str());
    return 2;
  }
  paai::Table scratch({"metric", "baseline", "candidate", "change"});
  if (diff(*fa, *fa, 0.10, scratch).drifted != 0) {
    std::fprintf(stderr, "self-test: identical documents drifted\n");
    return 2;
  }
  if (diff(*fa, *fb, 0.10, scratch).drifted != 1) {
    std::fprintf(stderr, "self-test: 50%% move not flagged\n");
    return 2;
  }
  MetricMap ignored = *fb;
  drop_ignored(ignored, {"t"});
  if (!ignored.empty() || diff(*fa, ignored, 0.10, scratch).compared != 0) {
    std::fprintf(stderr, "self-test: --ignore did not drop the bench\n");
    return 2;
  }
  // Suite documents with differing host `meta` stamps (bench_snapshot.sh)
  // must diff clean: meta never reaches the metric map.
  const char* suite_a = R"({"schema":"paai.bench.suite.v1","label":"a",
    "created_unix":1,
    "meta":{"cpu_model":"cpu-a","cores":8,"compiler":"g++ 13",
            "created_utc":"2026-01-01T00:00:00Z"},
    "benches":{"t":{"schema":"paai.bench.v1","bench":"t",
                    "results":{"detection_packets":1000}}}})";
  const char* suite_b = R"({"schema":"paai.bench.suite.v1","label":"b",
    "created_unix":2,
    "meta":{"cpu_model":"cpu-b","cores":128,"compiler":"clang 19",
            "created_utc":"2026-02-02T00:00:00Z"},
    "benches":{"t":{"schema":"paai.bench.v1","bench":"t",
                    "results":{"detection_packets":1000}}}})";
  const auto sa = paai::obs::json_parse(suite_a, &error);
  const auto sb = paai::obs::json_parse(suite_b, &error);
  if (!sa || !sb) {
    std::fprintf(stderr, "self-test: suite fixture parse failed: %s\n",
                 error.c_str());
    return 2;
  }
  const auto fsa = flatten(*sa, &error);
  const auto fsb = flatten(*sb, &error);
  if (!fsa || !fsb || fsa->size() != 1) {
    std::fprintf(stderr, "self-test: suite flatten failed: %s\n",
                 error.c_str());
    return 2;
  }
  const DiffStats meta_stats = diff(*fsa, *fsb, 0.10, scratch);
  if (meta_stats.drifted != 0 || meta_stats.compared != 1 ||
      !meta_stats.notes.empty()) {
    std::fprintf(stderr, "self-test: differing meta objects caused drift\n");
    return 2;
  }
  std::printf("bench_diff self-test: ok\n");
  return 0;
}

void usage() {
  std::fprintf(stderr,
               "usage: bench_diff [--threshold=PCT] [--ignore=BENCH]... "
               "[--csv] BASELINE.json CANDIDATE.json\n"
               "       bench_diff --self-test\n");
}

}  // namespace

int main(int argc, char** argv) {
  if (paai::has_flag(argc, argv, "--self-test")) return self_test();

  double threshold = 0.10;
  std::vector<std::string> files;
  std::vector<std::string> ignores;
  bool csv = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--threshold=", 0) == 0) {
      try {
        threshold = std::stod(arg.substr(12)) / 100.0;
      } catch (const std::exception&) {
        std::fprintf(stderr, "error: bad --threshold value '%s'\n",
                     arg.c_str());
        return 2;
      }
      if (!(threshold >= 0.0)) {  // also rejects NaN
        std::fprintf(stderr, "error: --threshold must be >= 0\n");
        return 2;
      }
    } else if (arg.rfind("--ignore=", 0) == 0) {
      if (arg.size() == 9) {
        std::fprintf(stderr, "error: --ignore needs a bench name\n");
        return 2;
      }
      ignores.push_back(arg.substr(9));
    } else if (arg == "--csv") {
      csv = true;
    } else if (arg.rfind("--", 0) == 0) {
      std::fprintf(stderr, "error: unknown option '%s'\n", arg.c_str());
      usage();
      return 2;
    } else {
      files.push_back(arg);
    }
  }
  if (files.size() != 2) {
    usage();
    return 2;
  }

  std::string error;
  auto base = load(files[0], &error);
  if (!base) {
    std::fprintf(stderr, "error: %s\n", error.c_str());
    return 2;
  }
  auto cand = load(files[1], &error);
  if (!cand) {
    std::fprintf(stderr, "error: %s\n", error.c_str());
    return 2;
  }
  drop_ignored(*base, ignores);
  drop_ignored(*cand, ignores);

  paai::Table table({"metric", "baseline", "candidate", "change"});
  const DiffStats stats = diff(*base, *cand, threshold, table);
  for (const auto& note : stats.notes) {
    std::fprintf(stderr, "note: %s\n", note.c_str());
  }
  if (stats.drifted > 0) table.print(std::cout, csv);
  std::printf("%zu metrics compared, %zu beyond %.3g%%\n", stats.compared,
              stats.drifted, threshold * 100.0);
  return stats.drifted > 0 ? 1 : 0;
}
