// paai — command-line driver for the library.
//
//   paai run     [options]  run one experiment and print the verdict
//   paai curve   [options]  Monte-Carlo FP/FN curve over packet counts
//   paai bounds  [options]  evaluate the §7 closed forms
//   paai mesh    [options]  many paths over one shared topology (--topo
//                           grammar, docs/MESH.md); links are convicted
//                           from the cross-path union of evidence and
//                           printed with witness-path provenance
//   paai explain FILE       replay a forensic event log (JSONL, written by
//                           --events-out) into a conviction audit trail
//   paai serve   [options]  online scoring service: consume a JSONL event
//                           stream (stdin, file, or FIFO) through the
//                           incremental engine; announce convictions as
//                           they happen, snapshot state periodically,
//                           drain gracefully on SIGINT
//   paai replay  FILE       feed a recorded event log through the stream
//                           engine; with --verify, assert the result is
//                           bit-identical to the batch run's verdict
//   paai top     FILE       live textual dashboard over a paai.telemetry.v1
//                           JSONL file (written by --telemetry-out):
//                           rates, serve lag, phase breakdown; --once
//                           renders a single frame and exits
//
// Options (all commands):
//   --protocol=NAME   full-ack | paai1 | paai2 | comb1 | comb2 | statfl |
//                     sigack                                (default paai1)
//   --d=N             path length in hops                   (default 6)
//   --rho=X           natural per-link loss                 (default 0.01)
//   --packets=N       data packets to send                  (default 60000)
//   --rate=X          source rate, packets/second           (default 100)
//   --p=X             probe/sampling probability            (default 1/36)
//   --threshold=X     conviction threshold                  (default rho+0.008)
//   --seed=N          RNG seed                              (default 1)
//   --fault=LINK:RATE      link-level malicious extra loss (repeatable)
//   --adversary=SPEC  node strategy (repeatable). Two forms:
//                     * declarative plan grammar, compact or JSON — e.g.
//                       'stealth@4:margin=0.9' or
//                       'collude@4:rate=0.5;ack@2:rate=0.3' — see
//                       docs/ADVERSARIES.md for the full catalog
//                       (adaptive strategies included);
//                     * legacy NODE:KIND:RATE with KIND in uniform | data |
//                       ack | corrupt | withhold | withhold-drop
//   --faults=SPEC     scripted benign faults (bursty loss, link churn,
//                     node outages); compact grammar or JSON — see
//                     docs/FAULTS.md
//   --blame=MODE      conviction rule (docs/DETECTORS.md):
//                       margin          one-standard-error margin (default)
//                       persistent[:K]  K repeated first-failing-hop
//                                       observations instead of the margin
//                                       (K defaults to 3)
//                       windowed[:W]    margin, plus convict on a flagrant
//                                       W-unit window (W defaults to 192)
//                       hybrid[:K[,W]]  windowed, plus convict after K
//                                       consecutive hot windows (K=4)
//                     "standard" is accepted as an alias for margin.
//                     Also applies to `paai mesh`, where checkpoint
//                     rounds are the windows (W is ignored there).
//   --runs=N          (curve) Monte-Carlo runs              (default 50)
//   --jobs=N          (curve) worker threads; 0 = all cores (default 0)
//                     results are bit-identical for any value
//   --csv             machine-readable output
//   --metrics-out=F   write a paai.bench.v1 JSON document (metrics +
//                     src/obs counters) for the command
//   --trace-out=F     write a Chrome trace_event JSON
//   --telemetry-out=F stream live paai.telemetry.v1 JSONL samples (see
//                     docs/OBSERVABILITY.md; consume with `paai top` or
//                     tools/telemetry_report); enables the metrics
//                     registry and phase self-profiler for the process
//   --telemetry-every=N  sampling cadence in command work units — serve/
//                     replay: applied events; run: packets sent; curve:
//                     completed runs; mesh: committed units (default 10000)
//   --events-out=F    write the forensic event log as JSONL (run: the
//                     experiment; curve: Monte-Carlo run 0)
//   --events-cap=N    per-node event-ring capacity            (default 32768)
//
// Examples:
//   paai run --protocol=paai1 --fault=4:0.02
//   paai run --protocol=fullack --adversary=3:corrupt:0.3 --packets=5000
//   paai run --protocol=paai1 --adversary='stealth@4:margin=0.9'
//   paai run --adversary='collude@4:rate=0.5'
//            --faults='ge@2:pg=0.005,pb=0.3,g2b=0.003,b2g=0.15'
//   paai run --protocol=paai1 --faults='ge@2:pg=0.005,pb=0.3,g2b=0.003,b2g=0.15'
//   paai curve --protocol=paai2 --packets=400000 --runs=20
//   paai run --packets=20000 --events-out=run.jsonl
//   paai replay run.jsonl --verify
//   mkfifo events.pipe
//   paai serve --in=events.pipe --state-out=paai.state --snapshot-every=1000
//
// Serve/replay options:
//   --in=PATH         JSONL event source; '-' = stdin     (serve default -)
//   --state-in=F      restore engine state (paai.state.v1) before reading
//   --state-out=F     snapshot target; written every --snapshot-every
//                     applied events and once on every exit path
//   --snapshot-every=N  periodic snapshot cadence (applied events; 0=off)
//   --skip-malformed  (serve) count and skip bad lines instead of failing
//   --verify          (replay) exit nonzero unless the engine's verdict
//                     matches the log's recorded batch convictions exactly
#include <algorithm>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <thread>

#include "adversary/spec.h"
#include "analysis/bounds.h"
#include "bench/bench_common.h"
#include "faults/plan.h"
#include "mesh/runner.h"
#include "util/specgrammar.h"
#include "obs/events.h"
#include "obs/forensics.h"
#include "obs/profile.h"
#include "obs/telemetry.h"
#include "runner/montecarlo.h"
#include "runner/producer.h"
#include "stream/engine.h"
#include "stream/service.h"
#include "stream/state.h"
#include "util/csv.h"

using namespace paai;
using namespace paai::runner;

namespace {

struct CliError {
  std::string message;
};

std::optional<std::string> get_opt(int argc, char** argv,
                                   const std::string& name) {
  const std::string prefix = "--" + name + "=";
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind(prefix, 0) == 0) return arg.substr(prefix.size());
  }
  return std::nullopt;
}

std::vector<std::string> get_all(int argc, char** argv,
                                 const std::string& name) {
  const std::string prefix = "--" + name + "=";
  std::vector<std::string> out;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind(prefix, 0) == 0) out.push_back(arg.substr(prefix.size()));
  }
  return out;
}

protocols::ProtocolKind parse_protocol(const std::string& name) {
  if (name == "full-ack" || name == "fullack") {
    return protocols::ProtocolKind::kFullAck;
  }
  if (name == "paai1") return protocols::ProtocolKind::kPaai1;
  if (name == "paai2") return protocols::ProtocolKind::kPaai2;
  if (name == "comb1") return protocols::ProtocolKind::kCombination1;
  if (name == "comb2") return protocols::ProtocolKind::kCombination2;
  if (name == "statfl") return protocols::ProtocolKind::kStatisticalFl;
  if (name == "sigack") return protocols::ProtocolKind::kSigAck;
  throw CliError{"unknown protocol '" + name + "'"};
}

AdversarySpec parse_legacy_adversary(const std::string& spec) {
  const auto c1 = spec.find(':');
  const auto c2 = spec.find(':', c1 + 1);
  if (c1 == std::string::npos || c2 == std::string::npos) {
    throw CliError{"--adversary wants NODE:KIND:RATE, got '" + spec + "'"};
  }
  AdversarySpec out;
  out.node = std::stoul(spec.substr(0, c1));
  const std::string kind = spec.substr(c1 + 1, c2 - c1 - 1);
  out.rate = std::stod(spec.substr(c2 + 1));
  if (kind == "uniform") {
    out.kind = AdversarySpec::Kind::kUniform;
  } else if (kind == "data") {
    out.kind = AdversarySpec::Kind::kTypeRates;
    out.type_rates.data = out.rate;
  } else if (kind == "ack") {
    out.kind = AdversarySpec::Kind::kAckOnly;
  } else if (kind == "corrupt") {
    out.kind = AdversarySpec::Kind::kCorrupt;
  } else if (kind == "withhold") {
    out.kind = AdversarySpec::Kind::kWithholdRelease;
  } else if (kind == "withhold-drop") {
    out.kind = AdversarySpec::Kind::kWithholdDrop;
  } else {
    throw CliError{"unknown adversary kind '" + kind + "'"};
  }
  return out;
}

/// --blame=margin | persistent[:K] | windowed[:W] | hybrid[:K[,W]]
/// (protocols/window.h grammar; "standard" = margin for back-compat).
protocols::BlameSpec parse_blame_mode(const std::string& mode) {
  try {
    return protocols::BlameSpec::parse(mode);
  } catch (const std::invalid_argument& e) {
    throw CliError{std::string("--blame: ") + e.what()};
  }
}

ExperimentConfig config_from_args(int argc, char** argv) {
  ExperimentConfig cfg;
  cfg.protocol =
      parse_protocol(get_opt(argc, argv, "protocol").value_or("paai1"));
  cfg.path.length = std::stoul(get_opt(argc, argv, "d").value_or("6"));
  cfg.path.natural_loss =
      std::stod(get_opt(argc, argv, "rho").value_or("0.01"));
  cfg.path.max_latency_ms = 5.0;
  cfg.path.seed = std::stoull(get_opt(argc, argv, "seed").value_or("1"));
  cfg.params.total_packets =
      std::stoull(get_opt(argc, argv, "packets").value_or("60000"));
  cfg.params.send_rate_pps =
      std::stod(get_opt(argc, argv, "rate").value_or("100"));
  cfg.params.probe_probability = std::stod(
      get_opt(argc, argv, "p").value_or(std::to_string(1.0 / 36.0)));
  cfg.decision_threshold = std::stod(get_opt(argc, argv, "threshold")
                                         .value_or(std::to_string(
                                             cfg.path.natural_loss + 0.008)));
  for (const auto& f : get_all(argc, argv, "fault")) {
    const auto colon = f.find(':');
    if (colon == std::string::npos) {
      throw CliError{"--fault wants LINK:RATE, got '" + f + "'"};
    }
    cfg.link_faults.push_back(LinkFault{std::stoul(f.substr(0, colon)),
                                        std::stod(f.substr(colon + 1))});
  }
  for (const auto& a : get_all(argc, argv, "adversary")) {
    // The declarative grammar is recognizable on sight: compact clauses
    // carry '@', JSON starts with '[' or '{'. Anything else is the legacy
    // NODE:KIND:RATE form.
    const std::string_view t = util::spec_trim(a);
    if (!t.empty() &&
        (t.find('@') != std::string_view::npos || t.front() == '[' ||
         t.front() == '{')) {
      const auto plan = adversary::AdversaryPlan::parse(a);
      cfg.adversaries.insert(cfg.adversaries.end(), plan.specs.begin(),
                             plan.specs.end());
    } else {
      cfg.adversaries.push_back(parse_legacy_adversary(a));
    }
  }
  if (const auto spec = get_opt(argc, argv, "faults")) {
    cfg.faults = faults::FaultPlan::parse(*spec);
  }
  if (const auto blame = get_opt(argc, argv, "blame")) {
    cfg.params.blame = parse_blame_mode(*blame);
  }
  return cfg;
}

/// --events-out / --events-cap handling shared by run and curve. Returns
/// a live log only when the user asked for one.
std::unique_ptr<obs::EventLog> make_event_log(int argc, char** argv) {
  if (!get_opt(argc, argv, "events-out")) return nullptr;
  const std::size_t cap = std::stoul(
      get_opt(argc, argv, "events-cap").value_or("32768"));
  return std::make_unique<obs::EventLog>(cap);
}

void write_event_log(int argc, char** argv, const obs::EventLog& log) {
  const auto path = get_opt(argc, argv, "events-out");
  if (!path) return;
  std::ofstream out(*path);
  if (!out) throw CliError{"cannot open '" + *path + "' for writing"};
  log.write_jsonl(out);
  std::fprintf(stderr,
               "events: %llu recorded, %llu dropped (ring cap %zu) -> %s\n",
               static_cast<unsigned long long>(log.recorded()),
               static_cast<unsigned long long>(log.dropped()),
               log.per_node_capacity(), path->c_str());
}

int cmd_run(int argc, char** argv) {
  bench::BenchSession session("paai.run", argc, argv);
  ExperimentConfig cfg = config_from_args(argc, argv);
  cfg.path.trace = session.trace();
  cfg.telemetry = session.telemetry();
  const auto events = make_event_log(argc, argv);
  cfg.path.events = events.get();
  const bool csv = has_flag(argc, argv, "--csv");
  std::fprintf(stderr, "running %s on a %zu-hop path, %llu packets...\n",
               protocols::protocol_name(cfg.protocol), cfg.path.length,
               static_cast<unsigned long long>(cfg.params.total_packets));
  const ExperimentResult r = run_experiment(cfg);
  if (events) write_event_log(argc, argv, *events);
  session.info("protocol", protocols::protocol_name(cfg.protocol));
  if (!cfg.faults.empty()) session.info("faults", cfg.faults.to_string());
  session.metric("convicted_links",
                 static_cast<double>(r.final_convicted.size()));
  session.metric("observed_e2e_rate", r.observed_e2e_rate);
  session.metric("ground_truth_delivery", r.ground_truth_delivery);
  session.metric("overhead_bytes_ratio", r.overhead_bytes_ratio);
  session.metric("overhead_packets_ratio", r.overhead_packets_ratio);
  session.metric("events_processed",
                 static_cast<double>(r.events_processed));

  Table table({"link", "estimated_theta", "true_loss", "verdict"});
  for (std::size_t i = 0; i < r.final_thetas.size(); ++i) {
    const bool convicted =
        std::find(r.final_convicted.begin(), r.final_convicted.end(), i) !=
        r.final_convicted.end();
    table.row()
        .cell("l_" + std::to_string(i))
        .num(r.final_thetas[i], 4)
        .num(i < r.true_link_loss.size() ? r.true_link_loss[i] : 0.0, 4)
        .cell(convicted ? "CONVICTED" : "");
  }
  table.print(std::cout, csv);
  std::printf("\nmonitored rounds: %llu   failure rate: %.4f   "
              "delivery (ground truth): %.4f\n",
              static_cast<unsigned long long>(r.observations),
              r.observed_e2e_rate, r.ground_truth_delivery);
  std::printf("overhead: %.4f ctrl bytes/data byte, %.4f ctrl pkts/data "
              "pkt\n",
              r.overhead_bytes_ratio, r.overhead_packets_ratio);
  return r.final_convicted.empty() ? 1 : 0;
}

int cmd_curve(int argc, char** argv) {
  bench::BenchSession session("paai.curve", argc, argv);
  MonteCarloConfig mc;
  mc.base = config_from_args(argc, argv);
  mc.trace = session.trace();
  mc.telemetry = session.telemetry();
  const auto events = make_event_log(argc, argv);
  mc.events = events.get();
  mc.runs = std::stoul(get_opt(argc, argv, "runs").value_or("50"));
  mc.jobs = std::stoul(get_opt(argc, argv, "jobs").value_or("0"));
  if (mc.base.link_faults.empty() && mc.base.adversaries.empty()) {
    mc.base.link_faults.push_back(LinkFault{mc.base.path.length - 2, 0.02});
  }
  for (const auto& f : mc.base.link_faults) {
    mc.malicious_links.push_back(f.link);
  }
  for (const auto& a : mc.base.adversaries) {
    mc.malicious_links.push_back(a.node);  // adjacency handled loosely
  }
  mc.base.checkpoints = log_checkpoints(
      std::max<std::uint64_t>(mc.base.params.total_packets / 100, 50),
      mc.base.params.total_packets, 15);

  std::fprintf(stderr, "curve: %zu runs x %llu packets (%s)...\n", mc.runs,
               static_cast<unsigned long long>(mc.base.params.total_packets),
               protocols::protocol_name(mc.base.protocol));
  const MonteCarloResult r = run_monte_carlo(mc);
  if (events) write_event_log(argc, argv, *events);
  session.exec(r.exec);
  session.info("protocol", protocols::protocol_name(mc.base.protocol));
  if (!mc.base.faults.empty()) {
    session.info("faults", mc.base.faults.to_string());
  }
  if (r.detection_packets) {
    session.metric("detection_packets",
                   static_cast<double>(*r.detection_packets));
  }
  if (!r.curve.empty()) {
    session.metric("final_fp", r.curve.back().fp);
    session.metric("final_fn", r.curve.back().fn);
  }
  if (!r.detection_samples.empty()) {
    session.metric("detection_packets_p50", r.detection_p50);
    session.metric("detection_packets_p90", r.detection_p90);
    session.metric("detection_packets_p99", r.detection_p99);
  }

  Table table({"packets", "false_positive", "false_negative"});
  for (const auto& pt : r.curve) {
    table.row()
        .integer(static_cast<long long>(pt.packets))
        .num(pt.fp, 4)
        .num(pt.fn, 4);
  }
  table.print(std::cout, has_flag(argc, argv, "--csv"));
  if (r.detection_packets) {
    std::printf("\nconverged at %llu packets\n",
                static_cast<unsigned long long>(*r.detection_packets));
  } else {
    std::printf("\nnot converged within budget\n");
  }
  if (!r.detection_samples.empty()) {
    std::printf("detection timeline over %zu/%zu runs: p50 %.0f  p90 %.0f  "
                "p99 %.0f packets\n",
                r.detection_samples.size(), r.runs, r.detection_p50,
                r.detection_p90, r.detection_p99);
  }
  return 0;
}

int cmd_explain(int argc, char** argv) {
  if (argc < 3 || argv[2][0] == '-') {
    throw CliError{"explain wants an event-log file: paai explain FILE"};
  }
  std::ifstream in(argv[2]);
  if (!in) throw CliError{std::string("cannot open '") + argv[2] + "'"};
  std::string error;
  const std::vector<obs::Event> events = obs::EventLog::read_jsonl(in, &error);
  if (events.empty()) {
    throw CliError{error.empty() ? std::string("empty event log") : error};
  }
  const obs::ForensicsReport report = obs::forensics_analyze(events);
  obs::write_audit_trail(std::cout, report);
  return report.convictions.empty() ? 1 : 0;
}

// ------------------------------------------------------------ serve/replay

volatile std::sig_atomic_t g_stop = 0;
void handle_sigint(int) { g_stop = 1; }

/// Builds the streaming engine for serve/replay: restored from
/// --state-in, pre-configured from --protocol/--d/--threshold/--blame, or
/// left blank to self-configure from the log's run-config prologue.
stream::ScoreEngine make_stream_engine(int argc, char** argv) {
  stream::ScoreEngine engine;
  if (const auto path = get_opt(argc, argv, "state-in")) {
    std::ifstream in(*path);
    if (!in) throw CliError{"cannot open state file '" + *path + "'"};
    std::ostringstream buf;
    buf << in.rdbuf();
    std::string error;
    if (!stream::load_state(buf.str(), &engine, &error)) {
      throw CliError{"'" + *path + "': " + error};
    }
    std::fprintf(stderr,
                 "state: restored %s engine at %llu events (%llu applied)\n",
                 protocols::protocol_name(engine.config().protocol),
                 static_cast<unsigned long long>(engine.events_seen()),
                 static_cast<unsigned long long>(engine.events_applied()));
  } else if (const auto protocol = get_opt(argc, argv, "protocol")) {
    stream::EngineConfig cfg;
    cfg.protocol = parse_protocol(*protocol);
    cfg.num_links = std::stoul(get_opt(argc, argv, "d").value_or("6"));
    const double rho = std::stod(get_opt(argc, argv, "rho").value_or("0.01"));
    cfg.threshold = std::stod(
        get_opt(argc, argv, "threshold").value_or(std::to_string(rho + 0.008)));
    if (const auto blame = get_opt(argc, argv, "blame")) {
      cfg.blame = parse_blame_mode(*blame);
    }
    engine.configure(cfg);
  }
  return engine;
}

stream::ServeConfig serve_config_from_args(int argc, char** argv) {
  stream::ServeConfig cfg;
  cfg.snapshot_every =
      std::stoull(get_opt(argc, argv, "snapshot-every").value_or("0"));
  cfg.state_out = get_opt(argc, argv, "state-out").value_or("");
  cfg.fail_fast = !has_flag(argc, argv, "--skip-malformed");
  return cfg;
}

void print_serve_summary(const char* cmd, const stream::ServeReport& report,
                         const stream::ScoreEngine& engine,
                         bool skip_malformed = false) {
  std::fprintf(
      stderr,
      "%s: %zu lines, %llu events (%llu applied, %llu malformed), "
      "%llu snapshots%s\n",
      cmd, report.lines, static_cast<unsigned long long>(report.events),
      static_cast<unsigned long long>(report.applied),
      static_cast<unsigned long long>(report.parse_errors),
      static_cast<unsigned long long>(report.snapshots),
      report.interrupted ? " [drained on SIGINT]" : "");
  // Lag/throughput line — always, telemetry on or off.
  const double throughput =
      report.wall_seconds > 0.0
          ? static_cast<double>(report.applied) / report.wall_seconds
          : 0.0;
  std::fprintf(stderr,
               "%s: %.0f events/s applied over %.2fs, peak lag %llu events, "
               "peak backlog %lld B\n",
               cmd, throughput, report.wall_seconds,
               static_cast<unsigned long long>(report.peak_lag_events),
               static_cast<long long>(report.peak_backlog_bytes));
  if (skip_malformed && report.parse_errors > 0 && !report.failed) {
    std::fprintf(stderr,
                 "%s: skipped %llu malformed lines (--skip-malformed)\n",
                 cmd, static_cast<unsigned long long>(report.parse_errors));
  }
  if (engine.configured()) {
    std::fprintf(stderr,
                 "%s: %s, %llu packets, %llu observations, e2e %.4f\n", cmd,
                 protocols::protocol_name(engine.config().protocol),
                 static_cast<unsigned long long>(engine.packets_sent()),
                 static_cast<unsigned long long>(engine.observations()),
                 engine.observed_e2e_rate());
  }
}

int cmd_serve(int argc, char** argv) {
  bench::BenchSession session("paai.serve", argc, argv);
  stream::ScoreEngine engine = make_stream_engine(argc, argv);
  const std::string in_path = get_opt(argc, argv, "in").value_or("-");
  std::ifstream file;
  std::istream* in = &std::cin;
  if (in_path != "-") {
    file.open(in_path);
    if (!file) throw CliError{"cannot open '" + in_path + "'"};
    in = &file;
  }
  stream::ServeConfig cfg = serve_config_from_args(argc, argv);
  cfg.telemetry = session.telemetry();
  if (in_path != "-") {
    // Back-pressure probe for file inputs: bytes written to the file but
    // not yet consumed. Re-stat every call so a tail-style producer that
    // keeps appending is seen growing.
    cfg.backlog_bytes = [&file, in_path]() -> std::int64_t {
      std::error_code ec;
      const auto size = std::filesystem::file_size(in_path, ec);
      if (ec) return 0;
      const auto pos = file.tellg();
      if (pos < 0) return 0;
      const auto consumed = static_cast<std::int64_t>(pos);
      const auto total = static_cast<std::int64_t>(size);
      return total > consumed ? total - consumed : 0;
    };
  }

  g_stop = 0;
  const auto previous = std::signal(SIGINT, handle_sigint);
  const stream::ServeReport report =
      stream::serve_stream(engine, *in, std::cout, cfg, &g_stop);
  std::signal(SIGINT, previous);

  session.metric("events", static_cast<double>(report.events));
  session.metric("events_applied", static_cast<double>(report.applied));
  session.metric("parse_errors", static_cast<double>(report.parse_errors));
  session.metric("snapshots", static_cast<double>(report.snapshots));
  session.metric("convictions",
                 static_cast<double>(report.new_convictions.size()));
  session.metric("peak_lag_events",
                 static_cast<double>(report.peak_lag_events));
  session.metric("peak_backlog_bytes",
                 static_cast<double>(report.peak_backlog_bytes));
  print_serve_summary("serve", report, engine, !cfg.fail_fast);
  if (report.failed) {
    std::fprintf(stderr, "error: %s\n", report.error.c_str());
    return 2;
  }
  return 0;
}

int cmd_replay(int argc, char** argv) {
  std::string path;
  if (argc >= 3 && argv[2][0] != '-') {
    path = argv[2];
  } else if (const auto opt = get_opt(argc, argv, "in")) {
    path = *opt;
  } else {
    throw CliError{"replay wants an event-log file: paai replay FILE"};
  }
  std::ifstream in(path);
  if (!in) throw CliError{"cannot open '" + path + "'"};

  bench::BenchSession session("paai.replay", argc, argv);
  stream::ScoreEngine engine = make_stream_engine(argc, argv);
  stream::ServeConfig cfg = serve_config_from_args(argc, argv);
  cfg.fail_fast = true;   // a recorded log must parse completely
  cfg.announce = false;   // the verdict table below is the output
  cfg.telemetry = session.telemetry();
  const stream::ServeReport report =
      stream::serve_stream(engine, in, std::cout, cfg, nullptr);
  print_serve_summary("replay", report, engine);
  if (report.failed) {
    std::fprintf(stderr, "error: %s\n", report.error.c_str());
    return 2;
  }
  if (!engine.configured()) {
    throw CliError{"log carries no run-config and no --protocol/--state-in "
                   "was given"};
  }

  const std::vector<double> thetas = engine.thetas();
  const std::vector<std::size_t> convicted = engine.convicted();
  Table table({"link", "estimated_theta", "verdict"});
  for (std::size_t i = 0; i < thetas.size(); ++i) {
    const bool is_convicted =
        std::find(convicted.begin(), convicted.end(), i) != convicted.end();
    table.row()
        .cell("l_" + std::to_string(i))
        .num(thetas[i], 4)
        .cell(is_convicted ? "CONVICTED" : "");
  }
  table.print(std::cout, has_flag(argc, argv, "--csv"));

  if (has_flag(argc, argv, "--verify")) {
    if (!engine.run_ended()) {
      std::fprintf(stderr,
                   "verify: log has no run-end (partial log?) — nothing to "
                   "verify against\n");
      return 1;
    }
    // The batch run's final verdict: the conviction records stamped with
    // the run's total packet count (checkpoint records carry smaller
    // counts). Bit-identity means the same link set AND the same thetas.
    bool ok = true;
    const stream::ConvictionRecord* divergent = nullptr;
    const auto flag = [&](const stream::ConvictionRecord& rec) {
      if (divergent == nullptr) divergent = &rec;
      ok = false;
    };
    std::vector<std::size_t> expected;
    for (const stream::ConvictionRecord& rec : engine.recorded_convictions()) {
      if (rec.packets != engine.packets_sent()) continue;
      expected.push_back(rec.link);
      if (rec.link >= thetas.size() || thetas[rec.link] != rec.theta) {
        std::fprintf(stderr,
                     "verify: theta mismatch on l_%zu (batch %.17g, "
                     "stream %.17g)\n",
                     rec.link, rec.theta,
                     rec.link < thetas.size() ? thetas[rec.link] : 0.0);
        flag(rec);
      }
      if (rec.observations != engine.observations()) {
        std::fprintf(stderr,
                     "verify: observation count mismatch on l_%zu\n",
                     rec.link);
        flag(rec);
      }
    }
    std::sort(expected.begin(), expected.end());
    if (expected != convicted) {
      std::fprintf(stderr,
                   "verify: conviction set mismatch (batch %zu links, "
                   "stream %zu links)\n",
                   expected.size(), convicted.size());
      // Point at the first final-checkpoint record the stream's verdict
      // disagrees with (if the numeric checks above found none).
      if (divergent == nullptr) {
        for (const stream::ConvictionRecord& rec :
             engine.recorded_convictions()) {
          if (rec.packets != engine.packets_sent()) continue;
          if (!std::binary_search(convicted.begin(), convicted.end(),
                                  rec.link)) {
            divergent = &rec;
            break;
          }
        }
      }
      ok = false;
    }
    if (!ok) {
      if (divergent != nullptr) {
        std::fprintf(
            stderr,
            "verify: first divergent conviction record: l_%zu "
            "packets=%llu observations=%llu theta=%.17g (stream line "
            "%llu)\n",
            divergent->link,
            static_cast<unsigned long long>(divergent->packets),
            static_cast<unsigned long long>(divergent->observations),
            divergent->theta,
            static_cast<unsigned long long>(divergent->line));
      } else {
        // The stream convicted links the batch never recorded at the
        // final checkpoint — name them so the divergence is actionable.
        for (const std::size_t link : convicted) {
          if (!std::binary_search(expected.begin(), expected.end(), link)) {
            std::fprintf(stderr,
                         "verify: stream convicted l_%zu with no matching "
                         "batch record\n",
                         link);
          }
        }
      }
      return 1;
    }
    std::printf("\nverify: OK — stream verdict bit-identical to the batch "
                "run (%zu convicted)\n",
                convicted.size());
    return 0;
  }
  return convicted.empty() ? 1 : 0;
}

int cmd_mesh(int argc, char** argv) {
  bench::BenchSession session("paai.mesh", argc, argv);
  mesh::MeshConfig cfg;
  cfg.topo = mesh::Topology::parse(
      get_opt(argc, argv, "topo").value_or("fattree@8"));
  const auto n_paths =
      std::stoul(get_opt(argc, argv, "paths").value_or("10000"));
  const std::string engine = get_opt(argc, argv, "engine").value_or("stat");
  if (engine == "stat") {
    cfg.engine = mesh::MeshEngine::kStat;
  } else if (engine == "packet") {
    cfg.engine = mesh::MeshEngine::kPacket;
  } else {
    throw CliError{"--engine wants 'stat' or 'packet', got '" + engine +
                   "'"};
  }
  cfg.units_per_path =
      std::stoull(get_opt(argc, argv, "units").value_or("2000"));
  cfg.rounds = std::stoul(get_opt(argc, argv, "rounds").value_or("8"));
  cfg.natural_loss = std::stod(get_opt(argc, argv, "rho").value_or("0.01"));
  cfg.decision_threshold =
      std::stod(get_opt(argc, argv, "threshold").value_or("0.02"));
  cfg.seed0 = std::stoull(get_opt(argc, argv, "seed").value_or("9000"));
  cfg.jobs = std::stoul(get_opt(argc, argv, "jobs").value_or("0"));
  if (const auto blame = get_opt(argc, argv, "blame")) {
    cfg.blame = parse_blame_mode(*blame);
  }
  // Mesh-indexed plans: --fault takes MESH-LINK:RATE, --adversary /
  // --faults take the shared plan grammars with mesh node/link indices.
  for (const auto& f : get_all(argc, argv, "fault")) {
    const auto colon = f.find(':');
    if (colon == std::string::npos) {
      throw CliError{"--fault wants LINK:RATE, got '" + f + "'"};
    }
    cfg.link_faults.push_back(
        mesh::MeshLinkFault{std::stoul(f.substr(0, colon)),
                            std::stod(f.substr(colon + 1))});
  }
  for (const auto& a : get_all(argc, argv, "adversary")) {
    const std::string_view t = util::spec_trim(a);
    if (!t.empty() &&
        (t.find('@') != std::string_view::npos || t.front() == '[' ||
         t.front() == '{')) {
      const auto plan = adversary::AdversaryPlan::parse(a);
      cfg.adversaries.specs.insert(cfg.adversaries.specs.end(),
                                   plan.specs.begin(), plan.specs.end());
    } else {
      cfg.adversaries.specs.push_back(parse_legacy_adversary(a));
    }
  }
  if (const auto spec = get_opt(argc, argv, "faults")) {
    cfg.faults = faults::FaultPlan::parse(*spec);
  }
  cfg.telemetry = session.telemetry();
  if (cfg.engine == mesh::MeshEngine::kPacket) {
    cfg.packet_base = paper_config(
        parse_protocol(get_opt(argc, argv, "protocol").value_or("paai1")),
        std::stoull(get_opt(argc, argv, "packets").value_or("20000")), 0);
    cfg.packet_base.link_faults.clear();
    cfg.packet_base.path.natural_loss = cfg.natural_loss;
    cfg.packet_base.decision_threshold = cfg.decision_threshold;
  }
  cfg.paths = cfg.topo.enumerate_paths(n_paths, /*seed=*/7);

  std::fprintf(stderr,
               "mesh: %s — %zu paths x %llu units, engine=%s, jobs=%zu...\n",
               cfg.topo.to_string().c_str(), cfg.paths.size(),
               static_cast<unsigned long long>(cfg.units_per_path),
               engine.c_str(), cfg.jobs);
  const mesh::MeshResult r = mesh::run_mesh(cfg);

  Table table({"link", "edge", "paths", "units", "theta", "solo",
               "detect_units", "verdict"});
  for (std::size_t l = 0; l < r.links.size(); ++l) {
    const auto& row = r.links[l];
    if (!row.convicted && !row.malicious && row.blames == 0) continue;
    table.row()
        .cell("l_" + std::to_string(l))
        .cell(std::to_string(cfg.topo.link(l).from) + "->" +
              std::to_string(cfg.topo.link(l).to))
        .integer(static_cast<long long>(row.paths))
        .integer(static_cast<long long>(row.units))
        .num(row.theta, 4)
        .integer(static_cast<long long>(row.solo_convictions))
        .integer(static_cast<long long>(row.first_convicted_units))
        .cell(row.convicted ? (row.malicious ? "CONVICTED" : "FALSELY "
                                                             "CONVICTED")
                            : (row.malicious ? "missed" : ""));
  }
  table.print(std::cout, has_flag(argc, argv, "--csv"));

  // Conviction lines with provenance (the smoke legs grep these).
  for (const std::size_t l : r.convicted) {
    const auto& row = r.links[l];
    std::string witnesses;
    for (const std::uint32_t p : row.witnesses) {
      witnesses += (witnesses.empty() ? "p" : ",p") + std::to_string(p);
    }
    std::printf("CONVICTED l_%zu (%u->%u) [%s] theta=%.4f "
                "witnesses=%s\n",
                l, static_cast<unsigned>(cfg.topo.link(l).from),
                static_cast<unsigned>(cfg.topo.link(l).to),
                row.malicious ? "malicious" : "HONEST", row.theta,
                witnesses.c_str());
  }
  std::printf("\npaths: %zu   units: %llu   damage: %.4f   "
              "convicted: %zu/%zu malicious   false accusations: %zu\n",
              r.paths, static_cast<unsigned long long>(r.total_units),
              r.total_damage,
              r.malicious_links.size() - r.missed_malicious,
              r.malicious_links.size(), r.false_accusations);
  std::printf("score store: %zu B (+%zu B/worker shard) over %zu links\n",
              r.store_bytes, r.shard_bytes, cfg.topo.num_links());

  session.info("topology", cfg.topo.to_string());
  if (!cfg.adversaries.empty()) {
    session.info("adversary", cfg.adversaries.to_string());
  }
  if (!cfg.faults.empty()) session.info("faults", cfg.faults.to_string());
  session.metric("mesh.links", static_cast<double>(cfg.topo.num_links()));
  session.metric("mesh.paths", static_cast<double>(r.paths));
  session.metric("mesh.convicted", static_cast<double>(r.convicted.size()));
  session.metric("mesh.false_accusations",
                 static_cast<double>(r.false_accusations));
  session.metric("mesh.missed_malicious",
                 static_cast<double>(r.missed_malicious));
  session.metric("mesh.total_damage", r.total_damage);
  session.metric("mesh.detection_units_p50", r.detection_units_p50);
  session.metric("mesh.store_bytes", static_cast<double>(r.store_bytes));
  session.exec(r.exec);

  if (r.false_accusations != 0) return 1;
  return r.missed_malicious == 0 ? 0 : 1;
}

// ------------------------------------------------------------ top

/// One refresh worth of telemetry state: every complete, well-formed line
/// of the file. A torn tail (writer mid-line) is expected and skipped; a
/// malformed *complete* line is reported once per frame.
struct TopData {
  std::vector<obs::TelemetrySample> samples;
  std::size_t bad_lines = 0;
  std::string first_error;
};

TopData read_telemetry_file(const std::string& path) {
  TopData data;
  std::ifstream in(path);
  if (!in) return data;
  std::string line;
  while (std::getline(in, line)) {
    if (in.eof() && !line.empty()) break;  // torn tail: no newline yet
    if (line.empty()) continue;
    obs::TelemetrySample sample;
    std::string error;
    if (obs::parse_telemetry_line(line, &sample, &error)) {
      data.samples.push_back(std::move(sample));
    } else {
      ++data.bad_lines;
      if (data.first_error.empty()) data.first_error = error;
    }
  }
  return data;
}

void render_top_frame(const std::string& path, const TopData& data) {
  if (data.samples.empty()) {
    std::printf("paai top — %s: no samples yet\n", path.c_str());
    return;
  }
  const obs::TelemetrySample& last = data.samples.back();
  const obs::TelemetrySample* prev =
      data.samples.size() >= 2 ? &data.samples[data.samples.size() - 2]
                               : nullptr;
  std::printf("paai top — %s   sample %llu   (%zu samples%s)\n",
              path.c_str(), static_cast<unsigned long long>(last.sample),
              data.samples.size(),
              data.bad_lines > 0 ? ", MALFORMED LINES PRESENT" : "");
  const double wall_s = static_cast<double>(last.wall_ns) / 1e9;
  std::printf("units %llu   wall %.2fs   virt %.3fs\n",
              static_cast<unsigned long long>(last.units), wall_s,
              static_cast<double>(last.virt_ns) / 1e9);
  // Rates: mean over the whole stream plus the last inter-sample interval.
  if (wall_s > 0.0) {
    std::printf("rate: %.0f units/s mean",
                static_cast<double>(last.units) / wall_s);
    if (prev != nullptr && last.wall_ns > prev->wall_ns) {
      const double dt =
          static_cast<double>(last.wall_ns - prev->wall_ns) / 1e9;
      const double du = static_cast<double>(last.units - prev->units);
      std::printf("   %.0f units/s last interval", du / dt);
    }
    std::printf("\n");
  }
  if (!last.gauges.empty()) {
    std::printf("\n%-32s %14s %14s\n", "gauge", "value", "high");
    for (const obs::GaugeSnapshot& g : last.gauges) {
      std::printf("%-32s %14lld %14lld\n", g.name.c_str(),
                  static_cast<long long>(g.value),
                  static_cast<long long>(g.high));
    }
  }
  if (!last.queues.empty()) {
    std::printf("\n%-32s %14s\n", "queue", "peak depth");
    for (const auto& [name, high] : last.queues) {
      std::printf("%-32s %14llu\n", name.c_str(),
                  static_cast<unsigned long long>(high));
    }
  }
  // Phase breakdown aggregated over ALL samples (each line carries
  // deltas); inclusive times — nested scopes (crypto inside sim-loop)
  // overlap, so no percent column.
  std::array<obs::PhaseDelta, obs::kPhaseCount> totals{};
  for (const obs::TelemetrySample& s : data.samples) {
    for (const auto& [name, delta] : s.phases) {
      for (std::size_t p = 0; p < obs::kPhaseCount; ++p) {
        if (name == obs::phase_name(static_cast<obs::Phase>(p))) {
          totals[p].ns += delta.ns;
          totals[p].calls += delta.calls;
          totals[p].alloc_bytes += delta.alloc_bytes;
        }
      }
    }
  }
  bool any_phase = false;
  for (const auto& t : totals) any_phase |= t.calls > 0 || t.ns > 0;
  if (any_phase) {
    std::printf("\n%-16s %12s %14s %14s\n", "phase", "calls", "time (ms)",
                "alloc (B)");
    for (std::size_t p = 0; p < obs::kPhaseCount; ++p) {
      if (totals[p].calls == 0 && totals[p].ns == 0) continue;
      std::printf("%-16s %12llu %14.2f %14llu\n",
                  obs::phase_name(static_cast<obs::Phase>(p)),
                  static_cast<unsigned long long>(totals[p].calls),
                  static_cast<double>(totals[p].ns) / 1e6,
                  static_cast<unsigned long long>(totals[p].alloc_bytes));
    }
  }
  if (!last.counters.empty()) {
    std::printf("\n%-32s %14s\n", "counter (last delta)", "delta");
    for (const auto& [name, delta] : last.counters) {
      std::printf("%-32s %14llu\n", name.c_str(),
                  static_cast<unsigned long long>(delta));
    }
  }
  if (data.bad_lines > 0) {
    std::printf("\n%zu malformed lines; first: %s\n", data.bad_lines,
                data.first_error.c_str());
  }
}

int cmd_top(int argc, char** argv) {
  std::string path;
  if (argc >= 3 && argv[2][0] != '-') {
    path = argv[2];
  } else if (const auto opt = get_opt(argc, argv, "in")) {
    path = *opt;
  } else {
    throw CliError{"top wants a telemetry file: paai top FILE [--once]"};
  }
  const bool once = has_flag(argc, argv, "--once");
  const long interval_ms =
      std::stol(get_opt(argc, argv, "interval-ms").value_or("1000"));

  if (once) {
    const TopData data = read_telemetry_file(path);
    render_top_frame(path, data);
    return data.samples.empty() ? 1 : 0;
  }

  g_stop = 0;
  const auto previous = std::signal(SIGINT, handle_sigint);
  std::uint64_t rendered = 0;
  while (g_stop == 0) {
    const TopData data = read_telemetry_file(path);
    // ANSI clear + home; falls back to plain scrolling on dumb terminals.
    std::printf("\x1b[2J\x1b[H");
    render_top_frame(path, data);
    std::fflush(stdout);
    rendered = data.samples.size();
    std::this_thread::sleep_for(std::chrono::milliseconds(
        interval_ms > 0 ? interval_ms : 1000));
  }
  std::signal(SIGINT, previous);
  std::printf("\n");
  return rendered > 0 ? 0 : 1;
}

int cmd_bounds(int argc, char** argv) {
  analysis::Params p;
  p.d = std::stoul(get_opt(argc, argv, "d").value_or("6"));
  p.rho = std::stod(get_opt(argc, argv, "rho").value_or("0.01"));
  p.alpha = std::stod(get_opt(argc, argv, "alpha").value_or("0.03"));
  p.sigma = std::stod(get_opt(argc, argv, "sigma").value_or("0.03"));
  p.p = std::stod(get_opt(argc, argv, "p").value_or(
      std::to_string(1.0 / 36.0)));

  Table table({"protocol", "detection_pkts", "comm_ctrl/data",
               "storage_worst_r0nu"});
  table.row().cell("full-ack").num(analysis::tau_fullack(p), 4)
      .num(analysis::comm_fullack(p), 3)
      .num(analysis::storage_fullack(p).worst, 3);
  table.row().cell("PAAI-1").num(analysis::tau_paai1(p), 4)
      .num(analysis::comm_paai1(p), 3)
      .num(analysis::storage_paai1(p).worst, 3);
  table.row().cell("PAAI-2").num(analysis::tau_paai2(p), 4)
      .num(analysis::comm_paai2(p), 3)
      .num(analysis::storage_paai2(p).worst, 3);
  table.row().cell("statistical-FL").num(analysis::tau_statfl(p), 4)
      .num(analysis::comm_statfl(p), 3)
      .num(analysis::storage_statfl(p).worst, 3);
  table.print(std::cout, has_flag(argc, argv, "--csv"));
  return 0;
}

void usage() {
  std::printf(
      "usage: paai <run|curve|bounds> [--protocol=paai1] [--d=6] "
      "[--rho=0.01]\n"
      "            [--packets=N] [--rate=100] [--p=X] [--threshold=X]\n"
      "            [--fault=LINK:RATE]... [--adversary=SPEC]...\n"
      "            [--faults=SPEC] [--runs=N] [--jobs=N] [--seed=N] "
      "[--csv]\n"
      "            [--metrics-out=FILE] [--trace-out=FILE]\n"
      "            [--telemetry-out=FILE] [--telemetry-every=N]\n"
      "            [--events-out=FILE] [--events-cap=N] [--blame=MODE]\n"
      "       paai mesh   [--topo=SPEC] [--paths=N] [--engine=stat|packet]\n"
      "                   [--units=N] [--rounds=N] [--rho=X] "
      "[--threshold=X]\n"
      "                   [--fault=MESHLINK:RATE]... [--adversary=SPEC]...\n"
      "                   [--faults=SPEC] [--blame=MODE] [--seed=N]\n"
      "                   [--jobs=N] [--csv]\n"
      "                            many paths over one shared topology;\n"
      "                            convicts from cross-path evidence\n"
      "                            (topology grammar in docs/MESH.md)\n"
      "       paai explain FILE    audit trail from an --events-out log\n"
      "       paai serve  [--in=PATH|-] [--state-in=F] [--state-out=F]\n"
      "                   [--snapshot-every=N] [--skip-malformed]\n"
      "                            online scoring over a JSONL stream\n"
      "       paai replay FILE [--verify] [--state-in/--state-out]\n"
      "                            stream engine over a recorded log;\n"
      "                            --verify asserts batch bit-identity\n"
      "       paai top FILE [--once] [--interval-ms=N]\n"
      "                            live dashboard over a paai.telemetry.v1\n"
      "                            JSONL file (--telemetry-out of any\n"
      "                            command); --once prints one frame\n"
      "see tools/paai_cli.cc header for details and examples; the fault\n"
      "plan grammar is documented in docs/FAULTS.md, the adversary plan\n"
      "grammar (adaptive strategies included) in docs/ADVERSARIES.md, the\n"
      "--blame conviction-rule grammar "
      "(margin|persistent:K|windowed:W|hybrid:K,W)\n"
      "in docs/DETECTORS.md, the forensic event log in "
      "docs/OBSERVABILITY.md\n");
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    usage();
    return 2;
  }
  const std::string cmd = argv[1];
  try {
    if (cmd == "run") return cmd_run(argc, argv);
    if (cmd == "curve") return cmd_curve(argc, argv);
    if (cmd == "bounds") return cmd_bounds(argc, argv);
    if (cmd == "mesh") return cmd_mesh(argc, argv);
    if (cmd == "explain") return cmd_explain(argc, argv);
    if (cmd == "serve") return cmd_serve(argc, argv);
    if (cmd == "replay") return cmd_replay(argc, argv);
    if (cmd == "top") return cmd_top(argc, argv);
  } catch (const CliError& e) {
    std::fprintf(stderr, "error: %s\n", e.message.c_str());
    return 2;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
  usage();
  return 2;
}
