// telemetry_report — offline consumer for paai.telemetry.v1 JSONL files
// (written by --telemetry-out on paai run/curve/mesh/serve/replay and
// every bench binary).
//
//   telemetry_report FILE [--trace-out=F]
//
// Validates the stream with the strict parser (any malformed line or a
// non-monotone sample index is exit 2 — telemetry files are a schema,
// not best-effort logs), then prints a greppable summary: one `phase`
// line per profiled phase (calls, inclusive ns, allocation bytes), one
// `counter` line per counter (total over all deltas), one `gauge` line
// per gauge (last value, peak), one `queue` line per queue high-water.
// Phase times are inclusive — nested scopes (crypto inside sim-loop)
// overlap, so no percentage column is printed.
//
// --trace-out=F additionally exports each sample's phase deltas as
// Chrome trace_event complete events (one track per phase, timestamped
// on the virtual clock when present, else the wall clock) via the
// existing obs::TraceRing — load in chrome://tracing or
// https://ui.perfetto.dev.
//
// Exit codes: 0 ok, 1 empty stream (zero samples), 2 malformed input.
#include <array>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "obs/profile.h"
#include "obs/telemetry.h"
#include "obs/tracer.h"

namespace {

using paai::obs::GaugeSnapshot;
using paai::obs::PhaseDelta;
using paai::obs::TelemetrySample;

struct Options {
  std::string file;
  std::string trace_out;
};

bool parse_args(int argc, char** argv, Options* out) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--trace-out=", 0) == 0) {
      out->trace_out = arg.substr(std::strlen("--trace-out="));
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "error: unknown flag '%s'\n", arg.c_str());
      return false;
    } else if (out->file.empty()) {
      out->file = arg;
    } else {
      std::fprintf(stderr, "error: more than one input file\n");
      return false;
    }
  }
  if (out->file.empty()) {
    std::fprintf(stderr,
                 "usage: telemetry_report FILE [--trace-out=F]\n");
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  if (!parse_args(argc, argv, &opt)) return 2;

  std::ifstream in(opt.file);
  if (!in) {
    std::fprintf(stderr, "error: cannot open '%s'\n", opt.file.c_str());
    return 2;
  }

  std::vector<TelemetrySample> samples;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    TelemetrySample sample;
    std::string error;
    if (!paai::obs::parse_telemetry_line(line, &sample, &error)) {
      std::fprintf(stderr, "error: line %zu: %s\n", line_no, error.c_str());
      return 2;
    }
    if (!samples.empty() && sample.sample <= samples.back().sample) {
      std::fprintf(stderr,
                   "error: line %zu: sample index %llu not strictly "
                   "increasing (previous %llu)\n",
                   line_no, static_cast<unsigned long long>(sample.sample),
                   static_cast<unsigned long long>(samples.back().sample));
      return 2;
    }
    samples.push_back(std::move(sample));
  }
  if (samples.empty()) {
    std::fprintf(stderr, "telemetry: 0 samples in '%s'\n", opt.file.c_str());
    return 1;
  }

  const TelemetrySample& last = samples.back();
  std::printf("telemetry: %zu samples, units %llu, wall %.3f s\n",
              samples.size(), static_cast<unsigned long long>(last.units),
              static_cast<double>(last.wall_ns) / 1e9);

  // Aggregate the deltas. Phases keep enum order; counters sort by name.
  std::array<PhaseDelta, paai::obs::kPhaseCount> phase_totals{};
  std::map<std::string, std::uint64_t> counter_totals;
  std::map<std::string, std::uint64_t> queue_high;
  for (const TelemetrySample& s : samples) {
    for (const auto& [name, delta] : s.phases) {
      for (std::size_t p = 0; p < paai::obs::kPhaseCount; ++p) {
        if (name ==
            paai::obs::phase_name(static_cast<paai::obs::Phase>(p))) {
          phase_totals[p].ns += delta.ns;
          phase_totals[p].calls += delta.calls;
          phase_totals[p].alloc_bytes += delta.alloc_bytes;
        }
      }
    }
    for (const auto& [name, delta] : s.counters) {
      counter_totals[name] += delta;
    }
    for (const auto& [name, high] : s.queues) {
      auto& slot = queue_high[name];
      if (high > slot) slot = high;
    }
  }

  for (std::size_t p = 0; p < paai::obs::kPhaseCount; ++p) {
    const PhaseDelta& t = phase_totals[p];
    if (t.calls == 0 && t.ns == 0 && t.alloc_bytes == 0) continue;
    std::printf("phase %s calls=%llu ns=%llu alloc=%llu\n",
                paai::obs::phase_name(static_cast<paai::obs::Phase>(p)),
                static_cast<unsigned long long>(t.calls),
                static_cast<unsigned long long>(t.ns),
                static_cast<unsigned long long>(t.alloc_bytes));
  }
  for (const auto& [name, total] : counter_totals) {
    std::printf("counter %s total=%llu\n", name.c_str(),
                static_cast<unsigned long long>(total));
  }
  for (const GaugeSnapshot& g : last.gauges) {
    std::printf("gauge %s last=%lld peak=%lld\n", g.name.c_str(),
                static_cast<long long>(g.value),
                static_cast<long long>(g.high));
  }
  for (const auto& [name, high] : queue_high) {
    std::printf("queue %s peak=%llu\n", name.c_str(),
                static_cast<unsigned long long>(high));
  }

  if (!opt.trace_out.empty()) {
    // One complete event per (sample, phase) delta: the span covers the
    // inter-sample interval on the virtual clock (wall clock when no
    // virtual clock was supplied), its arg is the delta ns. phase_name()
    // returns string literals, satisfying TraceRing's lifetime rule.
    paai::obs::TraceRing ring(samples.size() * paai::obs::kPhaseCount + 16);
    std::uint64_t prev_ts = 0;
    for (const TelemetrySample& s : samples) {
      const std::uint64_t ts = s.virt_ns != 0 ? s.virt_ns : s.wall_ns;
      for (const auto& [name, delta] : s.phases) {
        for (std::size_t p = 0; p < paai::obs::kPhaseCount; ++p) {
          const auto phase = static_cast<paai::obs::Phase>(p);
          if (name != paai::obs::phase_name(phase)) continue;
          ring.complete(paai::obs::phase_name(phase), "telemetry",
                        static_cast<std::int64_t>(prev_ts / 1000),
                        static_cast<std::int64_t>(
                            ts > prev_ts ? (ts - prev_ts) / 1000 : 0),
                        static_cast<std::uint32_t>(p),
                        static_cast<std::int64_t>(delta.ns));
        }
      }
      prev_ts = ts;
    }
    std::ofstream os(opt.trace_out);
    if (!os) {
      std::fprintf(stderr, "error: cannot write trace to '%s'\n",
                   opt.trace_out.c_str());
      return 2;
    }
    ring.write_chrome_json(os);
    std::fprintf(stderr, "trace: %llu events -> %s\n",
                 static_cast<unsigned long long>(ring.recorded()),
                 opt.trace_out.c_str());
  }
  return 0;
}
